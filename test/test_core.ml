(* Unit and property tests for the core library's data types and solvers:
   Instance, Objective, Strategy, Order_dp, Optimal, Bounds, Solver. *)

open Confcall

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int
let float_t eps = Alcotest.float eps
let qt = QCheck_alcotest.to_alcotest

let sample_instance () =
  Instance.create ~d:2
    [| [| 0.5; 0.3; 0.2 |]; [| 0.1; 0.1; 0.8 |] |]

(* -------------------- Instance -------------------- *)

let test_instance_create_valid () =
  let t = sample_instance () in
  check int_t "m" 2 t.Instance.m;
  check int_t "c" 3 t.Instance.c;
  check int_t "d" 2 t.Instance.d

let test_instance_create_invalid () =
  let expect_invalid name f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "%s: expected Invalid_argument" name
  in
  expect_invalid "bad row sum" (fun () ->
      Instance.create ~d:1 [| [| 0.5; 0.2 |] |]);
  expect_invalid "negative prob" (fun () ->
      Instance.create ~d:1 [| [| 1.5; -0.5 |] |]);
  expect_invalid "d too large" (fun () ->
      Instance.create ~d:3 [| [| 0.5; 0.5 |] |]);
  expect_invalid "d zero" (fun () ->
      Instance.create ~d:0 [| [| 0.5; 0.5 |] |]);
  expect_invalid "ragged" (fun () ->
      Instance.create ~d:1 [| [| 1.0 |]; [| 0.5; 0.5 |] |]);
  expect_invalid "empty" (fun () -> Instance.create ~d:1 [||]);
  expect_invalid "zero row" (fun () ->
      Instance.create ~d:1 [| [| 0.0; 0.0 |] |])

(* One test per rejection path of the hardened validator: the message
   must name the offending row (and cell, for entry-level defects). *)
let test_instance_validate_named_errors () =
  let expect name needle rows =
    match Instance.validate ~d:1 rows with
    | Error msg ->
      let contains hay needle =
        let lh = String.length hay and ln = String.length needle in
        let rec go i =
          i + ln <= lh && (String.sub hay i ln = needle || go (i + 1))
        in
        go 0
      in
      if not (contains msg needle) then
        Alcotest.failf "%s: message %S does not mention %S" name msg needle
    | Ok () -> Alcotest.failf "%s: expected rejection" name
  in
  expect "NaN entry" "device 1, cell 1: probability is NaN"
    [| [| 0.5; 0.5 |]; [| 0.5; Float.nan |] |];
  expect "+inf entry" "device 0, cell 0: probability is +infinity"
    [| [| Float.infinity; 0.0 |]; [| 0.5; 0.5 |] |];
  expect "-inf entry" "device 0, cell 1: probability is -infinity"
    [| [| 0.5; Float.neg_infinity |] |];
  expect "negative entry" "device 0, cell 1: probability is negative"
    [| [| 1.5; -0.5 |] |];
  (* Finite entries whose sum overflows: the row-sum finiteness check,
     not the entry check, must catch this. *)
  expect "row sum overflows" "device 0: row sum is not finite"
    [| [| 1e308; 1e308 |] |];
  expect "row sum off" "device 0: row sums to"
    [| [| 0.5; 0.2 |] |];
  expect "zero row" "device 0: row has no mass"
    [| [| 0.0; 0.0 |] |];
  expect "ragged row" "device 1: row has 1 cells, expected 2"
    [| [| 0.5; 0.5 |]; [| 1.0 |] |]

let test_instance_zero_probabilities_allowed () =
  (* The §4.3 instance needs zeros. *)
  let t = Instance.create ~d:2 [| [| 0.0; 1.0; 0.0 |] |] in
  check int_t "c" 3 t.Instance.c

let test_cell_weight_and_order () =
  let t = sample_instance () in
  check (float_t 1e-12) "w0" 0.6 (Instance.cell_weight t 0);
  check (float_t 1e-12) "w1" 0.4 (Instance.cell_weight t 1);
  check (float_t 1e-12) "w2" 1.0 (Instance.cell_weight t 2);
  check Alcotest.(array int) "order" [| 2; 0; 1 |] (Instance.weight_order t)

let test_weight_order_tie_break () =
  let t = Instance.create ~d:2 [| [| 0.25; 0.25; 0.25; 0.25 |] |] in
  check Alcotest.(array int) "ties by index" [| 0; 1; 2; 3 |]
    (Instance.weight_order t)

let test_instance_with_d () =
  let t = sample_instance () in
  check int_t "with_d" 3 (Instance.with_d t 3).Instance.d;
  (match Instance.with_d t 9 with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "expected failure")

let test_instance_restrict () =
  let t = sample_instance () in
  let sub = Instance.restrict t ~d:1 ~cells:[| 0; 2 |] ~devices:[| 1 |] in
  check int_t "m" 1 sub.Instance.m;
  check int_t "c" 2 sub.Instance.c;
  check (float_t 1e-12) "renormalized" (0.1 /. 0.9) sub.Instance.p.(0).(0);
  check (float_t 1e-12) "renormalized" (0.8 /. 0.9) sub.Instance.p.(0).(1)

let test_instance_serialization_roundtrip () =
  let t = sample_instance () in
  let t' = Instance.of_string (Instance.to_string t) in
  check int_t "m" t.Instance.m t'.Instance.m;
  check int_t "c" t.Instance.c t'.Instance.c;
  check int_t "d" t.Instance.d t'.Instance.d;
  for i = 0 to t.Instance.m - 1 do
    for j = 0 to t.Instance.c - 1 do
      check (float_t 0.0) "prob" t.Instance.p.(i).(j) t'.Instance.p.(i).(j)
    done
  done

let test_instance_of_string_comments () =
  let t = Instance.of_string "# header\n1 2 1\n# row\n0.5 0.5\n" in
  check int_t "c" 2 t.Instance.c

let prop_generators_valid =
  QCheck.Test.make ~name:"random instances validate" ~count:100
    (QCheck.triple (QCheck.int_range 1 5) (QCheck.int_range 1 20)
       (QCheck.int_range 1 999999))
    (fun (m, c, seed) ->
      let rng = Prob.Rng.create ~seed in
      let d = 1 + Prob.Rng.int rng c in
      let inst = Instance.random_uniform_simplex rng ~m ~c ~d in
      Instance.validate ~d inst.Instance.p = Ok ())

let prop_zipf_valid =
  QCheck.Test.make ~name:"zipf instances validate" ~count:50
    (QCheck.pair (QCheck.int_range 1 4) (QCheck.int_range 2 30))
    (fun (m, c) ->
      let rng = Prob.Rng.create ~seed:(m + (c * 100)) in
      let inst = Instance.random_zipf rng ~s:1.2 ~m ~c ~d:2 in
      Instance.validate ~d:2 inst.Instance.p = Ok ())

(* -------------------- Objective -------------------- *)

let test_objective_success () =
  let probs = [| 0.5; 0.8 |] in
  check (float_t 1e-12) "all" 0.4 (Objective.success Objective.Find_all probs);
  check (float_t 1e-12) "any" 0.9 (Objective.success Objective.Find_any probs);
  check (float_t 1e-12) "at least 1 = any" 0.9
    (Objective.success (Objective.Find_at_least 1) probs);
  check (float_t 1e-12) "at least 2 = all" 0.4
    (Objective.success (Objective.Find_at_least 2) probs)

let test_objective_poisson_binomial () =
  (* P[>= 2 of 3] with p = (0.5, 0.5, 0.5): (3 + 1)/8 = 0.5. *)
  check (float_t 1e-12) "binomial tail" 0.5
    (Objective.success (Objective.Find_at_least 2) [| 0.5; 0.5; 0.5 |])

let test_objective_found_enough () =
  check bool_t "all no" false
    (Objective.found_enough Objective.Find_all ~m:3 ~found:2);
  check bool_t "all yes" true
    (Objective.found_enough Objective.Find_all ~m:3 ~found:3);
  check bool_t "any" true
    (Objective.found_enough Objective.Find_any ~m:3 ~found:1);
  check bool_t "k" true
    (Objective.found_enough (Objective.Find_at_least 2) ~m:3 ~found:2)

let prop_objective_monotone_in_probs =
  QCheck.Test.make ~name:"success monotone in prefix masses" ~count:200
    (QCheck.pair
       (QCheck.list_of_size (QCheck.Gen.int_range 1 5)
          (QCheck.map (fun n -> float_of_int n /. 100.0) (QCheck.int_range 0 100)))
       (QCheck.int_range 1 5))
    (fun (ps, k) ->
      let probs = Array.of_list ps in
      let m = Array.length probs in
      QCheck.assume (k <= m);
      let bigger = Array.map (fun p -> Stdlib.min 1.0 (p +. 0.1)) probs in
      List.for_all
        (fun obj ->
          Objective.success obj bigger >= Objective.success obj probs -. 1e-12)
        [ Objective.Find_all; Objective.Find_any; Objective.Find_at_least k ])

let prop_objective_exact_matches_float =
  QCheck.Test.make ~name:"success_exact matches success" ~count:100
    (QCheck.list_of_size (QCheck.Gen.int_range 1 5) (QCheck.int_range 0 100))
    (fun nums ->
      let probs_q =
        Array.of_list (List.map (fun n -> Numeric.Rational.of_ints n 100) nums)
      in
      let probs_f = Array.of_list (List.map (fun n -> float_of_int n /. 100.0) nums) in
      List.for_all
        (fun obj ->
          abs_float
            (Numeric.Rational.to_float (Objective.success_exact obj probs_q)
            -. Objective.success obj probs_f)
          < 1e-9)
        [ Objective.Find_all; Objective.Find_any; Objective.Find_at_least 2 ])

(* -------------------- Strategy -------------------- *)

let test_strategy_create_and_validate () =
  let s = Strategy.create [| [| 2; 0 |]; [| 1 |] |] in
  check int_t "length" 2 (Strategy.length s);
  check Alcotest.(array int) "sorted group" [| 0; 2 |] (Strategy.groups s).(0);
  check bool_t "validates" true (Strategy.validate ~c:3 s = Ok ());
  check bool_t "wrong c" true (Result.is_error (Strategy.validate ~c:4 s))

let test_strategy_create_invalid () =
  (match Strategy.create [| [| 0 |]; [| 0 |] |] with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "duplicate accepted");
  (match Strategy.create [| [||] |] with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "empty group accepted")

(* Pins the compensated-summation float path (prefix masses, Lemma 2.1
   sum, Poisson-binomial tail) to the exact-rational path: on instances
   with small-integer-weight rows, float EP must match rational EP to
   1e-12 per cell, for all three objectives. *)
let prop_expected_paging_matches_exact =
  QCheck.Test.make ~name:"expected_paging matches exact rational path"
    ~count:150
    (QCheck.quad (QCheck.int_range 1 4) (QCheck.int_range 2 9)
       (QCheck.int_range 1 4) (QCheck.int_range 0 1_000_000))
    (fun (m, c, d, seed) ->
      QCheck.assume (d <= c);
      let rng = Prob.Rng.create ~seed in
      let rows_q =
        Array.init m (fun _ ->
            let w = Array.init c (fun _ -> Prob.Rng.int rng 20) in
            if Array.for_all (fun x -> x = 0) w then
              w.(Prob.Rng.int rng c) <- 1;
            let s = Array.fold_left ( + ) 0 w in
            Array.map (fun n -> Numeric.Rational.of_ints n s) w)
      in
      let exact = Instance.Exact.create ~d rows_q in
      let inst = Instance.Exact.to_float exact in
      let order = Array.init c (fun j -> j) in
      for j = c - 1 downto 1 do
        let k = Prob.Rng.int rng (j + 1) in
        let t = order.(j) in
        order.(j) <- order.(k);
        order.(k) <- t
      done;
      let rounds = 1 + Prob.Rng.int rng d in
      let sizes = Array.make rounds 1 in
      for _ = 1 to c - rounds do
        let r = Prob.Rng.int rng rounds in
        sizes.(r) <- sizes.(r) + 1
      done;
      let strat = Strategy.of_sizes ~order ~sizes in
      List.for_all
        (fun objective ->
          let ef = Strategy.expected_paging ~objective inst strat in
          let eq =
            Numeric.Rational.to_float
              (Strategy.expected_paging_exact ~objective exact strat)
          in
          abs_float (ef -. eq) <= 1e-12 *. float_of_int c)
        [
          Objective.Find_all;
          Objective.Find_any;
          Objective.Find_at_least (1 + (m / 2));
        ])

let test_strategy_of_sizes () =
  let s = Strategy.of_sizes ~order:[| 3; 1; 0; 2 |] ~sizes:[| 2; 2 |] in
  check Alcotest.(array int) "g1" [| 1; 3 |] (Strategy.groups s).(0);
  check Alcotest.(array int) "g2" [| 0; 2 |] (Strategy.groups s).(1)

let test_strategy_page_all_and_singletons () =
  check int_t "page_all" 1 (Strategy.length (Strategy.page_all 5));
  check int_t "singletons" 5
    (Strategy.length (Strategy.singletons [| 4; 3; 2; 1; 0 |]))

let test_expected_paging_hand_computed () =
  (* m=1, p=(0.7, 0.2, 0.1), strategy {0}|{1,2}:
     EP = 3 - 2*0.7 = 1.6. *)
  let inst = Instance.create ~d:2 [| [| 0.7; 0.2; 0.1 |] |] in
  let s = Strategy.create [| [| 0 |]; [| 1; 2 |] |] in
  check (float_t 1e-12) "EP" 1.6 (Strategy.expected_paging inst s);
  (* Two devices, joint success in first group = 0.7*0.1. *)
  let inst2 =
    Instance.create ~d:2 [| [| 0.7; 0.2; 0.1 |]; [| 0.1; 0.2; 0.7 |] |]
  in
  check (float_t 1e-12) "EP2"
    (3.0 -. (2.0 *. 0.07))
    (Strategy.expected_paging inst2 s)

let test_expected_rounds () =
  let inst = Instance.create ~d:2 [| [| 0.7; 0.2; 0.1 |] |] in
  let s = Strategy.create [| [| 0 |]; [| 1; 2 |] |] in
  check (float_t 1e-12) "E[rounds]" 1.3 (Strategy.expected_rounds inst s)

let test_cost_on_outcome () =
  let s = Strategy.create [| [| 0; 1 |]; [| 2 |]; [| 3; 4 |] |] in
  check int_t "both round 1" 2
    (Strategy.cost_on_outcome s ~m:2 ~positions:[| 0; 1 |]);
  check int_t "one late" 5
    (Strategy.cost_on_outcome s ~m:2 ~positions:[| 0; 4 |]);
  check int_t "find any stops early" 2
    (Strategy.cost_on_outcome ~objective:Objective.Find_any s ~m:2
       ~positions:[| 0; 4 |]);
  check int_t "middle" 3
    (Strategy.cost_on_outcome s ~m:2 ~positions:[| 2; 2 |])

let test_strategy_rejects_too_many_rounds () =
  let inst = Instance.create ~d:1 [| [| 0.5; 0.5 |] |] in
  let s = Strategy.create [| [| 0 |]; [| 1 |] |] in
  match Strategy.expected_paging inst s with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected rejection"

let prop_ep_between_bounds =
  QCheck.Test.make ~name:"EP in [1, c] for any strategy" ~count:200
    (QCheck.pair (QCheck.int_range 1 3) (QCheck.int_range 2 8))
    (fun (m, c) ->
      let rng = Prob.Rng.create ~seed:(m + (c * 77)) in
      let d = Stdlib.min c 3 in
      let inst = Instance.random_uniform_simplex rng ~m ~c ~d in
      let order = Array.init c (fun j -> j) in
      Prob.Rng.shuffle rng order;
      let s = Strategy.singletons (Array.sub order 0 c) in
      let s = if d < c then Strategy.page_all c else s in
      let ep = Strategy.expected_paging inst s in
      ep >= 1.0 -. 1e-9 && ep <= float_of_int c +. 1e-9)

let prop_find_any_cheaper_than_find_all =
  QCheck.Test.make ~name:"find-any EP <= find-all EP" ~count:100
    (QCheck.pair (QCheck.int_range 2 4) (QCheck.int_range 3 9))
    (fun (m, c) ->
      let rng = Prob.Rng.create ~seed:(m * c) in
      let d = 3 in
      let c = Stdlib.max c d in
      let inst = Instance.random_uniform_simplex rng ~m ~c ~d in
      let s = (Greedy.solve inst).Order_dp.strategy in
      Strategy.expected_paging ~objective:Objective.Find_any inst s
      <= Strategy.expected_paging inst s +. 1e-9)

let prop_signature_monotone_in_k =
  QCheck.Test.make ~name:"EP monotone in k (signature)" ~count:60
    (QCheck.int_range 1 100000) (fun seed ->
      let rng = Prob.Rng.create ~seed in
      let m = 4 and c = 8 and d = 3 in
      let inst = Instance.random_uniform_simplex rng ~m ~c ~d in
      let s = (Greedy.solve inst).Order_dp.strategy in
      let eps =
        Array.init m (fun i ->
            Strategy.expected_paging
              ~objective:(Objective.Find_at_least (i + 1))
              inst s)
      in
      let ok = ref true in
      for i = 0 to m - 2 do
        if eps.(i) > eps.(i + 1) +. 1e-9 then ok := false
      done;
      !ok)

(* -------------------- Order_dp -------------------- *)

let test_order_dp_matches_brute_force_within_order () =
  (* The DP must find the best cut of the given order; verify against
     enumeration of all cut-size vectors. *)
  let rng = Prob.Rng.create ~seed:7 in
  for _ = 1 to 20 do
    let c = 6 + Prob.Rng.int rng 3 in
    let d = 2 + Prob.Rng.int rng 2 in
    let m = 1 + Prob.Rng.int rng 2 in
    let inst = Instance.random_uniform_simplex rng ~m ~c ~d in
    let order = Instance.weight_order inst in
    let dp = Order_dp.solve inst ~order in
    (* Enumerate all compositions of c into exactly d positive parts. *)
    let best = ref infinity in
    let rec go parts remaining slots =
      if slots = 1 then begin
        if remaining >= 1 then begin
          let sizes = Array.of_list (List.rev (remaining :: parts)) in
          let s = Strategy.of_sizes ~order ~sizes in
          let ep = Strategy.expected_paging inst s in
          if ep < !best then best := ep
        end
      end
      else
        for v = 1 to remaining - slots + 1 do
          go (v :: parts) (remaining - v) (slots - 1)
        done
    in
    go [] c d;
    check (float_t 1e-9) "dp = brute force" !best dp.Order_dp.expected_paging
  done

let test_order_dp_ep_consistent () =
  (* The DP's reported EP equals Lemma 2.1 applied to its strategy. *)
  let rng = Prob.Rng.create ~seed:8 in
  for _ = 1 to 30 do
    let inst = Instance.random_uniform_simplex rng ~m:2 ~c:12 ~d:4 in
    let r = Greedy.solve inst in
    check (float_t 1e-9) "consistent"
      (Strategy.expected_paging inst r.Order_dp.strategy)
      r.Order_dp.expected_paging
  done

let test_order_dp_rejects_bad_order () =
  let inst = sample_instance () in
  (match Order_dp.solve inst ~order:[| 0; 1 |] with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "short order accepted");
  match Order_dp.solve inst ~order:[| 0; 1; 1 |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "duplicate order accepted"

let test_order_dp_prefix_table () =
  let inst = Instance.create ~d:2 [| [| 0.5; 0.3; 0.2 |] |] in
  let table = Order_dp.prefix_success_table inst ~order:[| 0; 1; 2 |] in
  check (float_t 1e-12) "F0" 0.0 table.(0);
  check (float_t 1e-12) "F1" 0.5 table.(1);
  check (float_t 1e-12) "F2" 0.8 table.(2);
  check (float_t 1e-12) "F3" 1.0 table.(3)

(* -------------------- Optimal -------------------- *)

let test_exhaustive_small_known () =
  (* m=1, d=2, p = (0.7, 0.2, 0.1): optimal pages {0} then {1,2}. *)
  let inst = Instance.create ~d:2 [| [| 0.7; 0.2; 0.1 |] |] in
  let r = Optimal.exhaustive inst in
  check (float_t 1e-12) "EP" 1.6 r.Optimal.expected_paging

let test_bnb_matches_exhaustive () =
  let rng = Prob.Rng.create ~seed:9 in
  for _ = 1 to 25 do
    let m = 1 + Prob.Rng.int rng 3 in
    let c = 4 + Prob.Rng.int rng 6 in
    let inst = Instance.random_uniform_simplex rng ~m ~c ~d:2 in
    let a = Optimal.exhaustive inst in
    let b = Optimal.branch_and_bound_d2 inst in
    check (float_t 1e-9) "bnb = exhaustive" a.Optimal.expected_paging
      b.Optimal.expected_paging
  done

let test_bnb_matches_exhaustive_other_objectives () =
  let rng = Prob.Rng.create ~seed:10 in
  for _ = 1 to 15 do
    let m = 2 + Prob.Rng.int rng 2 in
    let c = 4 + Prob.Rng.int rng 5 in
    let inst = Instance.random_uniform_simplex rng ~m ~c ~d:2 in
    List.iter
      (fun obj ->
        let a = Optimal.exhaustive ~objective:obj inst in
        let b = Optimal.branch_and_bound_d2 ~objective:obj inst in
        check (float_t 1e-9)
          (Objective.to_string obj)
          a.Optimal.expected_paging b.Optimal.expected_paging)
      [ Objective.Find_any; Objective.Find_at_least 2 ]
  done

let test_bnb_requires_d2 () =
  let inst = Instance.all_uniform ~m:1 ~c:4 ~d:3 in
  match Optimal.branch_and_bound_d2 inst with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected rejection"

let test_exhaustive_guard () =
  let inst = Instance.all_uniform ~m:1 ~c:20 ~d:2 in
  match Optimal.exhaustive inst with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected size guard"

let test_best_dispatch () =
  let small = Instance.all_uniform ~m:2 ~c:6 ~d:2 in
  check bool_t "small solved" true (Optimal.best small <> None);
  let medium = Instance.all_uniform ~m:2 ~c:20 ~d:2 in
  check bool_t "medium via bnb" true (Optimal.best medium <> None);
  let large = Instance.all_uniform ~m:2 ~c:40 ~d:3 in
  check bool_t "large unsolved" true (Optimal.best large = None)

(* -------------------- Bounds -------------------- *)

let test_bounds_uniform_case () =
  (* Single uniform device: LB <= 3c/4 at d=2 and occupied-cells bound is
     exactly 1 - the m=1 occupancy sum = 1? No: occupied = sum over cells
     of p = 1. *)
  let inst = Instance.all_uniform ~m:1 ~c:8 ~d:2 in
  let lb = Bounds.lower_bound inst in
  check bool_t "lb <= opt" true (lb <= 6.0 +. 1e-9);
  check bool_t "lb >= 1" true (lb >= 1.0 -. 1e-9)

let test_occupied_cells_two_devices () =
  let inst =
    Instance.create ~d:2 [| [| 0.5; 0.5; 0.0 |]; [| 0.5; 0.0; 0.5 |] |]
  in
  (* occupied = (1-0.25) + 0.5 + 0.5 = 1.75 *)
  check (float_t 1e-12) "occupied" 1.75 (Bounds.occupied_cells inst)

let prop_bounds_admissible =
  QCheck.Test.make ~name:"bounds below greedy for all objectives" ~count:100
    (QCheck.int_range 1 1000000) (fun seed ->
      let rng = Prob.Rng.create ~seed in
      let m = 1 + Prob.Rng.int rng 3 in
      let c = 3 + Prob.Rng.int rng 8 in
      let d = Stdlib.min c (1 + Prob.Rng.int rng 3) in
      let inst = Instance.random_uniform_simplex rng ~m ~c ~d in
      List.for_all
        (fun obj ->
          match Objective.validate obj ~m with
          | Error _ -> true
          | Ok () ->
            let g = (Greedy.solve ~objective:obj inst).Order_dp.expected_paging in
            Bounds.lower_bound ~objective:obj inst <= g +. 1e-9)
        [ Objective.Find_all; Objective.Find_any; Objective.Find_at_least 2 ])

(* -------------------- Solver front-end -------------------- *)

let test_solver_dispatch () =
  let inst = Instance.all_uniform ~m:2 ~c:6 ~d:2 in
  List.iter
    (fun spec ->
      let o = Solver.solve spec inst in
      check bool_t
        (Solver.spec_to_string spec)
        true
        (o.Solver.expected_paging >= 1.0
        && o.Solver.expected_paging <= 6.0 +. 1e-9))
    Solver.basic_specs

let test_solver_spec_parsing () =
  check bool_t "greedy" true (Solver.spec_of_string "greedy" = Ok Solver.Greedy);
  check bool_t "bandwidth" true
    (Solver.spec_of_string "bandwidth-3" = Ok (Solver.Bandwidth_limited 3));
  check bool_t "unknown" true (Result.is_error (Solver.spec_of_string "nope"));
  check bool_t "bad bandwidth" true
    (Result.is_error (Solver.spec_of_string "bandwidth-x"))

let test_solver_exactness_flags () =
  let inst = Instance.all_uniform ~m:1 ~c:6 ~d:2 in
  check bool_t "greedy m=1 exact" true (Solver.solve Solver.Greedy inst).Solver.exact;
  let inst2 = Instance.all_uniform ~m:2 ~c:6 ~d:2 in
  check bool_t "greedy m=2 not exact" false
    (Solver.solve Solver.Greedy inst2).Solver.exact;
  check bool_t "exhaustive exact" true
    (Solver.solve Solver.Exhaustive inst2).Solver.exact

let () =
  Alcotest.run "core"
    [
      ( "instance",
        [
          Alcotest.test_case "create valid" `Quick test_instance_create_valid;
          Alcotest.test_case "create invalid" `Quick test_instance_create_invalid;
          Alcotest.test_case "validate names the bad row" `Quick
            test_instance_validate_named_errors;
          Alcotest.test_case "zeros allowed" `Quick
            test_instance_zero_probabilities_allowed;
          Alcotest.test_case "cell weight/order" `Quick test_cell_weight_and_order;
          Alcotest.test_case "tie break" `Quick test_weight_order_tie_break;
          Alcotest.test_case "with_d" `Quick test_instance_with_d;
          Alcotest.test_case "restrict" `Quick test_instance_restrict;
          Alcotest.test_case "serialization" `Quick
            test_instance_serialization_roundtrip;
          Alcotest.test_case "comments" `Quick test_instance_of_string_comments;
          qt prop_generators_valid;
          qt prop_zipf_valid;
        ] );
      ( "objective",
        [
          Alcotest.test_case "success" `Quick test_objective_success;
          Alcotest.test_case "poisson binomial" `Quick
            test_objective_poisson_binomial;
          Alcotest.test_case "found_enough" `Quick test_objective_found_enough;
          qt prop_objective_monotone_in_probs;
          qt prop_objective_exact_matches_float;
        ] );
      ( "strategy",
        [
          Alcotest.test_case "create/validate" `Quick
            test_strategy_create_and_validate;
          Alcotest.test_case "create invalid" `Quick test_strategy_create_invalid;
          Alcotest.test_case "of_sizes" `Quick test_strategy_of_sizes;
          Alcotest.test_case "page_all/singletons" `Quick
            test_strategy_page_all_and_singletons;
          Alcotest.test_case "EP hand computed" `Quick
            test_expected_paging_hand_computed;
          Alcotest.test_case "expected rounds" `Quick test_expected_rounds;
          Alcotest.test_case "cost on outcome" `Quick test_cost_on_outcome;
          Alcotest.test_case "round limit" `Quick
            test_strategy_rejects_too_many_rounds;
          qt prop_ep_between_bounds;
          qt prop_expected_paging_matches_exact;
          qt prop_find_any_cheaper_than_find_all;
          qt prop_signature_monotone_in_k;
        ] );
      ( "order_dp",
        [
          Alcotest.test_case "matches brute force" `Slow
            test_order_dp_matches_brute_force_within_order;
          Alcotest.test_case "EP consistent" `Quick test_order_dp_ep_consistent;
          Alcotest.test_case "rejects bad order" `Quick
            test_order_dp_rejects_bad_order;
          Alcotest.test_case "prefix table" `Quick test_order_dp_prefix_table;
        ] );
      ( "optimal",
        [
          Alcotest.test_case "small known" `Quick test_exhaustive_small_known;
          Alcotest.test_case "bnb = exhaustive" `Slow test_bnb_matches_exhaustive;
          Alcotest.test_case "bnb requires d=2" `Quick test_bnb_requires_d2;
          Alcotest.test_case "bnb other objectives" `Slow
            test_bnb_matches_exhaustive_other_objectives;
          Alcotest.test_case "size guard" `Quick test_exhaustive_guard;
          Alcotest.test_case "best dispatch" `Quick test_best_dispatch;
        ] );
      ( "bounds",
        [
          Alcotest.test_case "uniform sanity" `Quick test_bounds_uniform_case;
          Alcotest.test_case "occupied cells" `Quick
            test_occupied_cells_two_devices;
          qt prop_bounds_admissible;
        ] );
      ( "solver",
        [
          Alcotest.test_case "dispatch" `Quick test_solver_dispatch;
          Alcotest.test_case "spec parsing" `Quick test_solver_spec_parsing;
          Alcotest.test_case "exactness flags" `Quick test_solver_exactness_flags;
        ] );
    ]
