(* Fuzz smoke test for the two text-format entry points: the instance
   parser and the journal loader. Random bytes and mutated-valid inputs
   must either parse or raise the documented [Invalid_argument] — never
   escape with [Failure], [Scanf.Scan_failure], [Not_found], an index
   error or a crash.

   Case count is bounded so the suite stays fast; CI's fuzz-smoke job
   raises it via the [FUZZ_CASES] environment variable. *)

open Confcall

let cases =
  match Sys.getenv_opt "FUZZ_CASES" with
  | Some s -> ( try max 1 (int_of_string (String.trim s)) with _ -> 500)
  | None -> 500

let escape s =
  let s = if String.length s > 120 then String.sub s 0 120 ^ "..." else s in
  String.to_seq s
  |> Seq.map (fun c ->
         if c >= ' ' && c <= '~' then String.make 1 c
         else Printf.sprintf "\\x%02x" (Char.code c))
  |> List.of_seq |> String.concat ""

(* feed [input] to [f]; only success or Invalid_argument may come back *)
let expect_named_error ~what ~seed f input =
  match f input with
  | _ -> ()
  | exception Invalid_argument _ -> ()
  | exception e ->
    Alcotest.failf "%s (seed %d) escaped with %s on %S"
      what seed (Printexc.to_string e) (escape input)

let random_bytes rng len =
  String.init len (fun _ -> Char.chr (Prob.Rng.int rng 256))

(* mostly-printable garbage with structural characters the parsers care
   about: digits, dots, separators, tabs, newlines *)
let random_texty rng len =
  let alphabet = "0123456789.eE+- \t\n\r;|/aZ\x00" in
  String.init len (fun _ ->
      alphabet.[Prob.Rng.int rng (String.length alphabet)])

(* random point mutation of a valid serialization: byte flip, deletion,
   insertion, truncation, or a duplicated chunk *)
let mutate rng s =
  let n = String.length s in
  if n = 0 then s
  else
    match Prob.Rng.int rng 5 with
    | 0 ->
      let i = Prob.Rng.int rng n in
      String.mapi
        (fun j c -> if j = i then Char.chr (Prob.Rng.int rng 256) else c)
        s
    | 1 ->
      let i = Prob.Rng.int rng n in
      String.sub s 0 i ^ String.sub s (i + 1) (n - i - 1)
    | 2 ->
      let i = Prob.Rng.int rng n in
      String.sub s 0 i
      ^ String.make 1 (Char.chr (Prob.Rng.int rng 256))
      ^ String.sub s i (n - i)
    | 3 -> String.sub s 0 (Prob.Rng.int rng n)
    | _ ->
      let i = Prob.Rng.int rng n in
      let len = min (n - i) (1 + Prob.Rng.int rng 40) in
      s ^ String.sub s i len

let mutate_n rng s =
  let rec go k s = if k = 0 then s else go (k - 1) (mutate rng s) in
  go (1 + Prob.Rng.int rng 3) s

(* -------------------- instance parser -------------------- *)

let valid_instance_string rng =
  let m = 1 + Prob.Rng.int rng 4 and c = 1 + Prob.Rng.int rng 8 in
  let d = 1 + Prob.Rng.int rng c in
  Instance.to_string (Instance.random_uniform_simplex rng ~m ~c ~d)

let test_instance_fuzz () =
  let rng = Prob.Rng.create ~seed:0xF0220 in
  for case = 1 to cases do
    let input =
      match case mod 4 with
      | 0 -> random_bytes rng (Prob.Rng.int rng 200)
      | 1 -> random_texty rng (Prob.Rng.int rng 200)
      | _ -> mutate_n rng (valid_instance_string rng)
    in
    expect_named_error ~what:"Instance.of_string" ~seed:case
      Instance.of_string input
  done;
  (* sanity: the unmutated serialization still round-trips *)
  let s = valid_instance_string rng in
  let roundtrip = Instance.to_string (Instance.of_string s) in
  Alcotest.(check string) "roundtrip" s roundtrip

(* -------------------- journal loader -------------------- *)

let valid_journal_string rng =
  let n = Prob.Rng.int rng 6 in
  String.concat ""
    (List.init n (fun i ->
         Printf.sprintf "item-%d\tpayload %d\n" i (Prob.Rng.int rng 1000)))

let test_journal_fuzz () =
  let rng = Prob.Rng.create ~seed:0xF0221 in
  let path = Filename.temp_file "confcall_fuzz" ".journal" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
       for case = 1 to cases do
         let content =
           match case mod 4 with
           | 0 -> random_bytes rng (Prob.Rng.int rng 300)
           | 1 -> random_texty rng (Prob.Rng.int rng 300)
           | _ -> mutate_n rng (valid_journal_string rng)
         in
         let oc = open_out_bin path in
         output_string oc content;
         close_out oc;
         (match Journal.load_or_create path with
          | j ->
            (* a successful load must be self-consistent and reloadable *)
            let n = Journal.count j in
            Journal.close j;
            (match Journal.load_or_create path with
             | j2 ->
               if Journal.count j2 <> n then
                 Alcotest.failf
                   "journal reload changed count (%d -> %d) on %S" n
                   (Journal.count j2) (escape content);
               Journal.close j2
             | exception Invalid_argument _ ->
               Alcotest.failf "journal loaded then refused reload on %S"
                 (escape content))
          | exception Invalid_argument _ -> ()
          | exception e ->
            Alcotest.failf "Journal.load_or_create (case %d) escaped with %s on %S"
              case (Printexc.to_string e) (escape content))
       done)

let () =
  Alcotest.run "fuzz"
    [ ( "smoke",
        [ Alcotest.test_case "instance parser" `Quick test_instance_fuzz;
          Alcotest.test_case "journal loader" `Quick test_journal_fuzz;
        ] );
    ]
