(* Fuzz smoke test for the two text-format entry points: the instance
   parser and the journal loader. Random bytes and mutated-valid inputs
   must either parse or raise the documented [Invalid_argument] — never
   escape with [Failure], [Scanf.Scan_failure], [Not_found], an index
   error or a crash.

   Case count is bounded so the suite stays fast; CI's fuzz-smoke job
   raises it via the [FUZZ_CASES] environment variable. *)

open Confcall

let cases =
  match Sys.getenv_opt "FUZZ_CASES" with
  | Some s -> ( try max 1 (int_of_string (String.trim s)) with _ -> 500)
  | None -> 500

let escape s =
  let s = if String.length s > 120 then String.sub s 0 120 ^ "..." else s in
  String.to_seq s
  |> Seq.map (fun c ->
         if c >= ' ' && c <= '~' then String.make 1 c
         else Printf.sprintf "\\x%02x" (Char.code c))
  |> List.of_seq |> String.concat ""

(* feed [input] to [f]; only success or Invalid_argument may come back *)
let expect_named_error ~what ~seed f input =
  match f input with
  | _ -> ()
  | exception Invalid_argument _ -> ()
  | exception e ->
    Alcotest.failf "%s (seed %d) escaped with %s on %S"
      what seed (Printexc.to_string e) (escape input)

let random_bytes rng len =
  String.init len (fun _ -> Char.chr (Prob.Rng.int rng 256))

(* mostly-printable garbage with structural characters the parsers care
   about: digits, dots, separators, tabs, newlines *)
let random_texty rng len =
  let alphabet = "0123456789.eE+- \t\n\r;|/aZ\x00" in
  String.init len (fun _ ->
      alphabet.[Prob.Rng.int rng (String.length alphabet)])

(* random point mutation of a valid serialization: byte flip, deletion,
   insertion, truncation, or a duplicated chunk *)
let mutate rng s =
  let n = String.length s in
  if n = 0 then s
  else
    match Prob.Rng.int rng 5 with
    | 0 ->
      let i = Prob.Rng.int rng n in
      String.mapi
        (fun j c -> if j = i then Char.chr (Prob.Rng.int rng 256) else c)
        s
    | 1 ->
      let i = Prob.Rng.int rng n in
      String.sub s 0 i ^ String.sub s (i + 1) (n - i - 1)
    | 2 ->
      let i = Prob.Rng.int rng n in
      String.sub s 0 i
      ^ String.make 1 (Char.chr (Prob.Rng.int rng 256))
      ^ String.sub s i (n - i)
    | 3 -> String.sub s 0 (Prob.Rng.int rng n)
    | _ ->
      let i = Prob.Rng.int rng n in
      let len = min (n - i) (1 + Prob.Rng.int rng 40) in
      s ^ String.sub s i len

let mutate_n rng s =
  let rec go k s = if k = 0 then s else go (k - 1) (mutate rng s) in
  go (1 + Prob.Rng.int rng 3) s

(* -------------------- instance parser -------------------- *)

let valid_instance_string rng =
  let m = 1 + Prob.Rng.int rng 4 and c = 1 + Prob.Rng.int rng 8 in
  let d = 1 + Prob.Rng.int rng c in
  Instance.to_string (Instance.random_uniform_simplex rng ~m ~c ~d)

let test_instance_fuzz () =
  let rng = Prob.Rng.create ~seed:0xF0220 in
  for case = 1 to cases do
    let input =
      match case mod 4 with
      | 0 -> random_bytes rng (Prob.Rng.int rng 200)
      | 1 -> random_texty rng (Prob.Rng.int rng 200)
      | _ -> mutate_n rng (valid_instance_string rng)
    in
    expect_named_error ~what:"Instance.of_string" ~seed:case
      Instance.of_string input
  done;
  (* sanity: the unmutated serialization still round-trips *)
  let s = valid_instance_string rng in
  let roundtrip = Instance.to_string (Instance.of_string s) in
  Alcotest.(check string) "roundtrip" s roundtrip

(* -------------------- parser → flat arena boundary -------------------- *)

(* Whatever survives the parser must be safe to feed the flat hot path:
   one shared arena rebound across every surviving mutant (so stale
   cached tables from the previous mutant are in scope each time), and
   the flat EP must stay bit-identical to the legacy solver. Only the
   documented [Invalid_argument] may escape either path — and the two
   paths must agree on whether they reject. *)
let test_flat_arena_fuzz () =
  let rng = Prob.Rng.create ~seed:0xF0223 in
  let arena = Flat.create () in
  for case = 1 to cases do
    let input =
      match case mod 3 with
      | 0 -> random_texty rng (Prob.Rng.int rng 200)
      | _ -> mutate_n rng (valid_instance_string rng)
    in
    match Instance.of_string input with
    | exception Invalid_argument _ -> ()
    | exception e ->
      Alcotest.failf "Instance.of_string (seed %d) escaped with %s on %S" case
        (Printexc.to_string e) (escape input)
    | inst ->
      let legacy =
        match Solver.solve Solver.Greedy inst with
        | o -> Ok o
        | exception Invalid_argument msg -> Error msg
      in
      let flat =
        match Solver.solve ~arena Solver.Greedy inst with
        | o -> Ok o
        | exception Invalid_argument msg -> Error msg
        | exception e ->
          Alcotest.failf "flat greedy (seed %d) escaped with %s on %S" case
            (Printexc.to_string e) (escape input)
      in
      (match (legacy, flat) with
       | Ok l, Ok f ->
         if l.Solver.expected_paging <> f.Solver.expected_paging then
           Alcotest.failf
             "flat/legacy EP diverge (seed %d): %.17g vs %.17g on %S" case
             l.Solver.expected_paging f.Solver.expected_paging (escape input)
       | Error _, Error _ -> ()
       | Ok _, Error msg ->
         Alcotest.failf "flat rejects what legacy accepts (seed %d): %s" case
           msg
       | Error msg, Ok _ ->
         Alcotest.failf "flat accepts what legacy rejects (seed %d): %s" case
           msg)
  done

(* -------------------- journal loader -------------------- *)

let valid_journal_string rng =
  let n = Prob.Rng.int rng 6 in
  String.concat ""
    (List.init n (fun i ->
         Printf.sprintf "item-%d\tpayload %d\n" i (Prob.Rng.int rng 1000)))

let test_journal_fuzz () =
  let rng = Prob.Rng.create ~seed:0xF0221 in
  let path = Filename.temp_file "confcall_fuzz" ".journal" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
       for case = 1 to cases do
         let content =
           match case mod 4 with
           | 0 -> random_bytes rng (Prob.Rng.int rng 300)
           | 1 -> random_texty rng (Prob.Rng.int rng 300)
           | _ -> mutate_n rng (valid_journal_string rng)
         in
         let oc = open_out_bin path in
         output_string oc content;
         close_out oc;
         (match Journal.load_or_create path with
          | j ->
            (* a successful load must be self-consistent and reloadable *)
            let n = Journal.count j in
            Journal.close j;
            (match Journal.load_or_create path with
             | j2 ->
               if Journal.count j2 <> n then
                 Alcotest.failf
                   "journal reload changed count (%d -> %d) on %S" n
                   (Journal.count j2) (escape content);
               Journal.close j2
             | exception Invalid_argument _ ->
               Alcotest.failf "journal loaded then refused reload on %S"
                 (escape content))
          | exception Invalid_argument _ -> ()
          | exception e ->
            Alcotest.failf "Journal.load_or_create (case %d) escaped with %s on %S"
              case (Printexc.to_string e) (escape content))
       done)

(* -------------------- serve protocol -------------------- *)

(* The daemon's parse path must be total: any byte string into
   [Serve.Json.parse] or [Serve.Proto.decode] returns a result — no
   exception of any kind may escape (the connection loop relies on
   this to turn bad frames into ["error"] responses). *)

let valid_frame_string rng =
  let inst = valid_instance_string rng in
  match Prob.Rng.int rng 4 with
  | 0 ->
    Printf.sprintf "{\"id\": \"f%d\", \"op\": \"health\"}"
      (Prob.Rng.int rng 1000)
  | 1 ->
    Printf.sprintf
      "{\"id\": \"f%d\", \"op\": \"simulate\", \"scenario\": \"suburb\", \
       \"seed\": %d}"
      (Prob.Rng.int rng 1000) (Prob.Rng.int rng 100)
  | 2 ->
    Serve.Json.to_string
      (Serve.Json.Obj
         [ ("id", Serve.Json.Str (Printf.sprintf "f%d" (Prob.Rng.int rng 1000)));
           ("op", Serve.Json.Str "solve");
           ("instance", Serve.Json.Str inst);
           ("budget_ms", Serve.Json.Num (1.0 +. Prob.Rng.unit_float rng));
         ])
  | _ ->
    Serve.Json.to_string
      (Serve.Json.Obj
         [ ("id", Serve.Json.Str (Printf.sprintf "f%d" (Prob.Rng.int rng 1000)));
           ("op", Serve.Json.Str "solve");
           ("instance", Serve.Json.Str inst);
           ("solver", Serve.Json.Str "greedy");
           ("cache", Serve.Json.Bool false);
         ])

let test_protocol_fuzz () =
  let rng = Prob.Rng.create ~seed:0xF0222 in
  for case = 1 to cases do
    let input =
      match case mod 4 with
      | 0 -> random_bytes rng (Prob.Rng.int rng 400)
      | 1 -> random_texty rng (Prob.Rng.int rng 400)
      | _ -> mutate_n rng (valid_frame_string rng)
    in
    (match Serve.Json.parse input with
     | Ok j ->
       (* whatever parses must re-emit to a reparseable equal value *)
       let s = Serve.Json.to_string j in
       (match Serve.Json.parse s with
        | Ok j2 when j2 = j -> ()
        | Ok _ ->
          Alcotest.failf "Json print/reparse not fixed-point on %S"
            (escape input)
        | Error e ->
          Alcotest.failf "Json emitted unparseable %S (%s) from %S"
            (escape s) e (escape input))
     | Error _ -> ()
     | exception e ->
       Alcotest.failf "Json.parse (case %d) escaped with %s on %S" case
         (Printexc.to_string e) (escape input));
    match Serve.Proto.decode input with
    | Ok _ | Error _ -> ()
    | exception e ->
      Alcotest.failf "Proto.decode (case %d) escaped with %s on %S" case
        (Printexc.to_string e) (escape input)
  done

(* Live end of the same property: garbage frames over a real socket
   each draw a structured [error] response, the connection survives
   them all, and a well-formed frame afterwards still answers. *)
let test_connection_survives_garbage () =
  let rng = Prob.Rng.create ~seed:0xF0223 in
  let cfg =
    {
      (Serve.Server.default_config (Serve.Server.Tcp 0)) with
      domains = 1;
      max_frame_bytes = 2048;
      quiet = true;
    }
  in
  let h = Serve.Server.start cfg in
  Fun.protect
    ~finally:(fun () ->
      if not (Serve.Server.stop h) then Alcotest.fail "server did not drain")
  @@ fun () ->
  let port = Option.get (Serve.Server.bound_port h) in
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
  @@ fun () ->
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  let send s =
    let s = s ^ "\n" in
    let rec go off =
      if off < String.length s then
        go (off + Unix.write_substring fd s off (String.length s - off))
    in
    go 0
  in
  let sanitize s =
    String.map (fun c -> if c = '\n' || c = '\r' then ' ' else c) s
  in
  let n = max 20 (cases / 10) in
  for case = 1 to n do
    let line =
      match case mod 4 with
      | 0 -> sanitize (random_bytes rng (1 + Prob.Rng.int rng 300))
      | 1 -> sanitize (random_texty rng (1 + Prob.Rng.int rng 300))
      | 2 -> String.make (3000 + Prob.Rng.int rng 2000) 'x' (* oversized *)
      | _ -> sanitize (mutate_n rng (valid_frame_string rng))
    in
    send line
  done;
  send "{\"id\": \"fuzz-done\", \"op\": \"health\"}";
  (* read lines until the health answer; every line must be JSON *)
  let buf = Buffer.create 4096 in
  let chunk = Bytes.create 4096 in
  let deadline = Unix.gettimeofday () +. 30.0 in
  let done_ = ref false in
  while (not !done_) && Unix.gettimeofday () < deadline do
    (match Unix.select [ fd ] [] [] 0.1 with
     | [], _, _ -> ()
     | _ -> (
       match Unix.read fd chunk 0 4096 with
       | 0 -> Alcotest.fail "daemon closed the connection on garbage"
       | r -> Buffer.add_subbytes buf chunk 0 r
       | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()));
    let s = Buffer.contents buf in
    let rec eat start =
      match String.index_from_opt s start '\n' with
      | None ->
        Buffer.clear buf;
        Buffer.add_string buf (String.sub s start (String.length s - start))
      | Some i ->
        let line = String.sub s start (i - start) in
        (match Serve.Json.parse line with
         | Ok j ->
           if
             Option.bind (Serve.Json.member "id" j) Serve.Json.to_str
             = Some "fuzz-done"
           then done_ := true
         | Error e ->
           Alcotest.failf "daemon emitted non-JSON line %S (%s)"
             (escape line) e);
        eat (i + 1)
    in
    eat 0
  done;
  if not !done_ then Alcotest.fail "health after garbage never answered"

let () =
  Alcotest.run "fuzz"
    [ ( "smoke",
        [ Alcotest.test_case "instance parser" `Quick test_instance_fuzz;
          Alcotest.test_case "parser to flat arena" `Quick
            test_flat_arena_fuzz;
          Alcotest.test_case "journal loader" `Quick test_journal_fuzz;
          Alcotest.test_case "serve protocol parsers" `Quick
            test_protocol_fuzz;
          Alcotest.test_case "connection survives garbage" `Quick
            test_connection_survives_garbage;
        ] );
    ]
