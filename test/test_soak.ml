(* Chaos–soak harness for the deadline runner.

   Adversarial instances — near-zero rows, 1e-308 masses, heavy ties,
   hundreds of cells — are pushed through every fallback chain under
   tight budgets. Three invariants must survive every case:

     1. the run terminates within budget + grace (plus scheduling slack
        for loaded CI machines);
     2. the winning strategy is valid: partitions the cells, respects d;
     3. expected paging never regresses below the Page_all baseline.

   Seeds are fixed so CI failures reproduce; the default run stays fast
   (a few seconds). SOAK_CASES=<n> scales the sweep up for long runs. *)

open Confcall

let check = Alcotest.check
let bool_t = Alcotest.bool

(* ---------------- adversarial generators ---------------- *)

(* All mass on one cell; the rest at 1e-308, which underflows to nothing
   when summed against 1.0 — exercises denormal handling end to end. *)
let near_zero_rows ~m ~c ~d rng =
  let rows =
    Array.init m (fun _ ->
        let home = Prob.Rng.int rng c in
        Array.init c (fun j -> if j = home then 1.0 else 1e-308))
  in
  Instance.create ~d rows

(* Every cell weight identical: maximal ties, the sort and every
   tie-break in the DP sees equal keys. *)
let heavy_ties ~m ~c ~d =
  Instance.all_uniform ~m ~c ~d

(* A few huge cells and a long tail of tiny ones, mixed magnitudes. *)
let skewed ~m ~c ~d rng =
  Instance.random_zipf rng ~s:2.5 ~m ~c ~d

(* Tiny-but-nonzero tail: one dominant cell, the rest share 1e-9. *)
let tiny_tail ~m ~c ~d rng =
  let eps = 1e-9 /. float_of_int c in
  let rows =
    Array.init m (fun _ ->
        let home = Prob.Rng.int rng c in
        Array.init c (fun j ->
            if j = home then 1.0 -. (eps *. float_of_int (c - 1)) else eps))
  in
  Instance.create ~d rows

let generic ~m ~c ~d rng = Instance.random_uniform_simplex rng ~m ~c ~d

let generators =
  [
    "near-zero", near_zero_rows;
    "heavy-ties", (fun ~m ~c ~d _rng -> heavy_ties ~m ~c ~d);
    "skewed", skewed;
    "tiny-tail", tiny_tail;
    "simplex", generic;
  ]

(* ---------------- the soak loop ---------------- *)

let soak_case ?pool ?(slack_ms = 400.0) ~name ~objective ~budget_ms ~chain
    inst =
  let c = inst.Instance.c and d = inst.Instance.d in
  let t0 = Cancel.now () in
  let report = Runner.run ~objective ~budget_ms ~chain ?pool inst in
  let wall_ms = (Cancel.now () -. t0) *. 1000.0 in
  check bool_t
    (Printf.sprintf "%s: wall %.1f ms within %.0f + grace" name wall_ms
       budget_ms)
    true
    (wall_ms <= budget_ms +. 100.0 +. slack_ms);
  match report.Runner.winner with
  | None ->
    Alcotest.failf "%s: no winner (%s)" name
      (match report.Runner.failure with
       | Some e -> Runner.error_to_string e
       | None -> "no failure recorded")
  | Some (_, o) ->
    (match Strategy.validate ~c o.Solver.strategy with
     | Ok () -> ()
     | Error msg -> Alcotest.failf "%s: invalid strategy: %s" name msg);
    check bool_t
      (Printf.sprintf "%s: rounds within d" name)
      true
      (Array.length (Strategy.groups o.Solver.strategy) <= d);
    let page_all_ep =
      (Solver.solve ~objective Solver.Page_all inst).Solver.expected_paging
    in
    check bool_t
      (Printf.sprintf "%s: EP %.6f <= page-all %.6f" name
         o.Solver.expected_paging page_all_ep)
      true
      (o.Solver.expected_paging <= page_all_ep +. 1e-9)

let cases =
  match Sys.getenv_opt "SOAK_CASES" with
  | Some n -> (try max 1 (int_of_string n) with _ -> 40)
  | None -> 40

let chains =
  [
    Runner.default_chain;
    Solver.[ Local_search; Greedy; Page_all ];
    Solver.[ Exhaustive; Greedy ];
    Solver.[ Branch_and_bound; Local_search ];
  ]

let test_soak () =
  let rng = Prob.Rng.create ~seed:9001 in
  for case = 1 to cases do
    let gen_name, gen =
      List.nth generators (Prob.Rng.int rng (List.length generators))
    in
    let m = 1 + Prob.Rng.int rng 6 in
    let c = 2 + Prob.Rng.int rng 299 in
    let d = 1 + Prob.Rng.int rng (min 8 c) in
    let inst = gen ~m ~c ~d rng in
    let objective =
      match Prob.Rng.int rng 3 with
      | 0 -> Objective.Find_all
      | 1 -> Objective.Find_any
      | _ -> Objective.Find_at_least (1 + Prob.Rng.int rng m)
    in
    let budget_ms =
      match Prob.Rng.int rng 3 with 0 -> 1.0 | 1 -> 5.0 | _ -> 20.0
    in
    let chain = List.nth chains (Prob.Rng.int rng (List.length chains)) in
    let name =
      Printf.sprintf "case %d: %s m=%d c=%d d=%d %s budget=%.0fms" case
        gen_name m c d
        (Objective.to_string objective)
        budget_ms
    in
    soak_case ~name ~objective ~budget_ms ~chain inst
  done

(* Parallel chaos: the same adversarial diet, but raced across a domain
   pool. The three soak invariants must hold unchanged — the budget is
   shared by all raced stages, so termination-in-budget is the property
   most at risk — and the pool must not leak domains. Slack is wider
   than the sequential mode's: raced stages contend for cores, and on a
   single-core machine every raced case serializes behind the GC. *)
let test_soak_parallel () =
  let rng = Prob.Rng.create ~seed:40099 in
  let before = Exec.Pool.active_domains () in
  List.iter
    (fun domains ->
      Exec.Pool.with_pool ~domains (fun pool ->
          for case = 1 to max 1 (cases / 2) do
            let gen_name, gen =
              List.nth generators (Prob.Rng.int rng (List.length generators))
            in
            let m = 1 + Prob.Rng.int rng 4 in
            let c = 2 + Prob.Rng.int rng 149 in
            let d = 1 + Prob.Rng.int rng (min 8 c) in
            let inst = gen ~m ~c ~d rng in
            let objective =
              match Prob.Rng.int rng 3 with
              | 0 -> Objective.Find_all
              | 1 -> Objective.Find_any
              | _ -> Objective.Find_at_least (1 + Prob.Rng.int rng m)
            in
            let budget_ms =
              match Prob.Rng.int rng 3 with 0 -> 1.0 | 1 -> 5.0 | _ -> 20.0
            in
            let chain =
              List.nth chains (Prob.Rng.int rng (List.length chains))
            in
            let name =
              Printf.sprintf
                "parallel case %d: %s m=%d c=%d d=%d %s budget=%.0fms \
                 domains=%d"
                case gen_name m c d
                (Objective.to_string objective)
                budget_ms domains
            in
            soak_case ~pool ~slack_ms:1500.0 ~name ~objective ~budget_ms
              ~chain inst
          done))
    [ 2; 4 ];
  check bool_t "no leaked domains after parallel soak" true
    (Exec.Pool.active_domains () = before)

(* The degenerate corners deserve their own deterministic pass: the
   smallest instances, d = 1, d = c, single device, all under a 1 ms
   budget. *)
let test_soak_corners () =
  List.iter
    (fun (m, c, d) ->
      let rng = Prob.Rng.create ~seed:(m + (17 * c) + (1009 * d)) in
      List.iter
        (fun (gname, gen) ->
          let inst = gen ~m ~c ~d rng in
          soak_case
            ~name:(Printf.sprintf "corner %s m=%d c=%d d=%d" gname m c d)
            ~objective:Objective.Find_all ~budget_ms:1.0
            ~chain:Runner.default_chain inst)
        generators)
    [ (1, 1, 1); (1, 2, 2); (2, 2, 1); (3, 2, 2); (1, 300, 8); (6, 50, 50) ]

let () =
  Alcotest.run "soak"
    [
      ( "chaos",
        [
          Alcotest.test_case "randomized soak" `Quick test_soak;
          Alcotest.test_case "parallel randomized soak" `Quick
            test_soak_parallel;
          Alcotest.test_case "degenerate corners" `Quick test_soak_corners;
        ] );
    ]
