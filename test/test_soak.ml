(* Chaos–soak harness for the deadline runner.

   Adversarial instances — near-zero rows, 1e-308 masses, heavy ties,
   hundreds of cells — are pushed through every fallback chain under
   tight budgets. Three invariants must survive every case:

     1. the run terminates within budget + grace (plus scheduling slack
        for loaded CI machines);
     2. the winning strategy is valid: partitions the cells, respects d;
     3. expected paging never regresses below the Page_all baseline.

   Seeds are fixed so CI failures reproduce; the default run stays fast
   (a few seconds). SOAK_CASES=<n> scales the sweep up for long runs. *)

open Confcall

let check = Alcotest.check
let bool_t = Alcotest.bool

(* ---------------- adversarial generators ---------------- *)

(* All mass on one cell; the rest at 1e-308, which underflows to nothing
   when summed against 1.0 — exercises denormal handling end to end. *)
let near_zero_rows ~m ~c ~d rng =
  let rows =
    Array.init m (fun _ ->
        let home = Prob.Rng.int rng c in
        Array.init c (fun j -> if j = home then 1.0 else 1e-308))
  in
  Instance.create ~d rows

(* Every cell weight identical: maximal ties, the sort and every
   tie-break in the DP sees equal keys. *)
let heavy_ties ~m ~c ~d =
  Instance.all_uniform ~m ~c ~d

(* A few huge cells and a long tail of tiny ones, mixed magnitudes. *)
let skewed ~m ~c ~d rng =
  Instance.random_zipf rng ~s:2.5 ~m ~c ~d

(* Tiny-but-nonzero tail: one dominant cell, the rest share 1e-9. *)
let tiny_tail ~m ~c ~d rng =
  let eps = 1e-9 /. float_of_int c in
  let rows =
    Array.init m (fun _ ->
        let home = Prob.Rng.int rng c in
        Array.init c (fun j ->
            if j = home then 1.0 -. (eps *. float_of_int (c - 1)) else eps))
  in
  Instance.create ~d rows

let generic ~m ~c ~d rng = Instance.random_uniform_simplex rng ~m ~c ~d

let generators =
  [
    "near-zero", near_zero_rows;
    "heavy-ties", (fun ~m ~c ~d _rng -> heavy_ties ~m ~c ~d);
    "skewed", skewed;
    "tiny-tail", tiny_tail;
    "simplex", generic;
  ]

(* ---------------- the soak loop ---------------- *)

let soak_case ?pool ?(slack_ms = 400.0) ~name ~objective ~budget_ms ~chain
    inst =
  let c = inst.Instance.c and d = inst.Instance.d in
  let t0 = Cancel.now () in
  let report = Runner.run ~objective ~budget_ms ~chain ?pool inst in
  let wall_ms = (Cancel.now () -. t0) *. 1000.0 in
  check bool_t
    (Printf.sprintf "%s: wall %.1f ms within %.0f + grace" name wall_ms
       budget_ms)
    true
    (wall_ms <= budget_ms +. 100.0 +. slack_ms);
  match report.Runner.winner with
  | None ->
    Alcotest.failf "%s: no winner (%s)" name
      (match report.Runner.failure with
       | Some e -> Runner.error_to_string e
       | None -> "no failure recorded")
  | Some (_, o) ->
    (match Strategy.validate ~c o.Solver.strategy with
     | Ok () -> ()
     | Error msg -> Alcotest.failf "%s: invalid strategy: %s" name msg);
    check bool_t
      (Printf.sprintf "%s: rounds within d" name)
      true
      (Array.length (Strategy.groups o.Solver.strategy) <= d);
    let page_all_ep =
      (Solver.solve ~objective Solver.Page_all inst).Solver.expected_paging
    in
    check bool_t
      (Printf.sprintf "%s: EP %.6f <= page-all %.6f" name
         o.Solver.expected_paging page_all_ep)
      true
      (o.Solver.expected_paging <= page_all_ep +. 1e-9)

let cases =
  match Sys.getenv_opt "SOAK_CASES" with
  | Some n -> (try max 1 (int_of_string n) with _ -> 40)
  | None -> 40

let chains =
  [
    Runner.default_chain;
    Solver.[ Local_search; Greedy; Page_all ];
    Solver.[ Exhaustive; Greedy ];
    Solver.[ Branch_and_bound; Local_search ];
  ]

let test_soak () =
  let rng = Prob.Rng.create ~seed:9001 in
  for case = 1 to cases do
    let gen_name, gen =
      List.nth generators (Prob.Rng.int rng (List.length generators))
    in
    let m = 1 + Prob.Rng.int rng 6 in
    let c = 2 + Prob.Rng.int rng 299 in
    let d = 1 + Prob.Rng.int rng (min 8 c) in
    let inst = gen ~m ~c ~d rng in
    let objective =
      match Prob.Rng.int rng 3 with
      | 0 -> Objective.Find_all
      | 1 -> Objective.Find_any
      | _ -> Objective.Find_at_least (1 + Prob.Rng.int rng m)
    in
    let budget_ms =
      match Prob.Rng.int rng 3 with 0 -> 1.0 | 1 -> 5.0 | _ -> 20.0
    in
    let chain = List.nth chains (Prob.Rng.int rng (List.length chains)) in
    let name =
      Printf.sprintf "case %d: %s m=%d c=%d d=%d %s budget=%.0fms" case
        gen_name m c d
        (Objective.to_string objective)
        budget_ms
    in
    soak_case ~name ~objective ~budget_ms ~chain inst
  done

(* Parallel chaos: the same adversarial diet, but raced across a domain
   pool. The three soak invariants must hold unchanged — the budget is
   shared by all raced stages, so termination-in-budget is the property
   most at risk — and the pool must not leak domains. Slack is wider
   than the sequential mode's: raced stages contend for cores, and on a
   single-core machine every raced case serializes behind the GC. *)
let test_soak_parallel () =
  let rng = Prob.Rng.create ~seed:40099 in
  let before = Exec.Pool.active_domains () in
  List.iter
    (fun domains ->
      Exec.Pool.with_pool ~domains (fun pool ->
          for case = 1 to max 1 (cases / 2) do
            let gen_name, gen =
              List.nth generators (Prob.Rng.int rng (List.length generators))
            in
            let m = 1 + Prob.Rng.int rng 4 in
            let c = 2 + Prob.Rng.int rng 149 in
            let d = 1 + Prob.Rng.int rng (min 8 c) in
            let inst = gen ~m ~c ~d rng in
            let objective =
              match Prob.Rng.int rng 3 with
              | 0 -> Objective.Find_all
              | 1 -> Objective.Find_any
              | _ -> Objective.Find_at_least (1 + Prob.Rng.int rng m)
            in
            let budget_ms =
              match Prob.Rng.int rng 3 with 0 -> 1.0 | 1 -> 5.0 | _ -> 20.0
            in
            let chain =
              List.nth chains (Prob.Rng.int rng (List.length chains))
            in
            let name =
              Printf.sprintf
                "parallel case %d: %s m=%d c=%d d=%d %s budget=%.0fms \
                 domains=%d"
                case gen_name m c d
                (Objective.to_string objective)
                budget_ms domains
            in
            soak_case ~pool ~slack_ms:1500.0 ~name ~objective ~budget_ms
              ~chain inst
          done))
    [ 2; 4 ];
  check bool_t "no leaked domains after parallel soak" true
    (Exec.Pool.active_domains () = before)

(* The degenerate corners deserve their own deterministic pass: the
   smallest instances, d = 1, d = c, single device, all under a 1 ms
   budget. *)
let test_soak_corners () =
  List.iter
    (fun (m, c, d) ->
      let rng = Prob.Rng.create ~seed:(m + (17 * c) + (1009 * d)) in
      List.iter
        (fun (gname, gen) ->
          let inst = gen ~m ~c ~d rng in
          soak_case
            ~name:(Printf.sprintf "corner %s m=%d c=%d d=%d" gname m c d)
            ~objective:Objective.Find_all ~budget_ms:1.0
            ~chain:Runner.default_chain inst)
        generators)
    [ (1, 1, 1); (1, 2, 2); (2, 2, 1); (3, 2, 2); (1, 300, 8); (6, 50, 50) ]

(* ---------------- serve overload soak ---------------- *)

(* The daemon under a 4x-capacity burst of the same adversarial diet,
   with 1–20 ms budgets. Invariants:

     1. every request gets exactly one terminal response
        (ok / degraded / rejected — never silence, never a duplicate);
     2. a drain requested mid-burst still completes within grace;
     3. no leaked domains once the daemon stops. *)
let run_serve_burst ~chaos () =
  let before = Exec.Pool.active_domains () in
  let capacity = 8 in
  (* Chaos leg: every faultpoint armed at once, double the burst, cache
     journalling on so the journal/cache points actually probe. *)
  let n_mult = if chaos then 8 else 4 in
  let cache_path =
    if chaos then begin
      let p = Filename.temp_file "confcall_soak" ".cache" in
      Sys.remove p;
      Some p
    end
    else None
  in
  let cfg =
    {
      (Serve.Server.default_config (Serve.Server.Tcp 0)) with
      domains = 2;
      capacity;
      cache_path;
      cache_fsync = chaos;
      drain_grace_ms = 30_000.0;
      quiet = true;
    }
  in
  let h = Serve.Server.start cfg in
  let port = Option.get (Serve.Server.bound_port h) in
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  let send line =
    let s = line ^ "\n" in
    let rec go off =
      if off < String.length s then
        go (off + Unix.write_substring fd s off (String.length s - off))
    in
    go 0
  in
  let rng = Prob.Rng.create ~seed:0x50AC in
  let n = n_mult * capacity in
  let burst () =
    for i = 1 to n do
      let gen_name, gen =
        List.nth generators (Prob.Rng.int rng (List.length generators))
      in
      ignore gen_name;
      let m = 1 + Prob.Rng.int rng 3 in
      let c = 2 + Prob.Rng.int rng 60 in
      let d = 1 + Prob.Rng.int rng (min 6 c) in
      let inst = gen ~m ~c ~d rng in
      let budget_ms =
        match Prob.Rng.int rng 3 with 0 -> 1.0 | 1 -> 5.0 | _ -> 20.0
      in
      send
        (Serve.Json.to_string
           (Serve.Json.Obj
              [
                ("id", Serve.Json.Str (Printf.sprintf "s%d" i));
                ("op", Serve.Json.Str "solve");
                ("instance", Serve.Json.Str (Instance.to_string inst));
                ("chain", Serve.Json.Str "default");
                ("budget_ms", Serve.Json.Num budget_ms);
                ("cache", Serve.Json.Bool chaos);
              ]))
    done
  in
  burst ();
  (* drain lands while the burst is still in flight *)
  Serve.Server.request_drain h;
  (* collect until every id has answered, counting duplicates *)
  let seen : (string, int) Hashtbl.t = Hashtbl.create n in
  let statuses : (string, string) Hashtbl.t = Hashtbl.create n in
  let buf = Buffer.create 8192 in
  let chunk = Bytes.create 8192 in
  let deadline = Unix.gettimeofday () +. 30.0 in
  while Hashtbl.length seen < n && Unix.gettimeofday () < deadline do
    (match Unix.select [ fd ] [] [] 0.1 with
     | [], _, _ -> ()
     | _ -> (
       match Unix.read fd chunk 0 (Bytes.length chunk) with
       | 0 -> Alcotest.fail "daemon closed mid-burst"
       | r -> Buffer.add_subbytes buf chunk 0 r
       | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()));
    let s = Buffer.contents buf in
    let rec eat start =
      match String.index_from_opt s start '\n' with
      | None ->
        Buffer.clear buf;
        Buffer.add_string buf (String.sub s start (String.length s - start))
      | Some i ->
        let line = String.sub s start (i - start) in
        (match Serve.Json.parse line with
         | Error e -> Alcotest.failf "non-JSON response %S (%s)" line e
         | Ok j ->
           let str k = Option.bind (Serve.Json.member k j) Serve.Json.to_str in
           (match str "id" with
            | Some id ->
              Hashtbl.replace seen id
                (1 + Option.value (Hashtbl.find_opt seen id) ~default:0);
              Hashtbl.replace statuses id
                (Option.value (str "status") ~default:"?")
            | None -> Alcotest.failf "response without id: %S" line));
        eat (i + 1)
    in
    eat 0
  done;
  (try Unix.close fd with Unix.Unix_error _ -> ());
  check bool_t "drain completes within grace" true (Serve.Server.stop h);
  check bool_t
    (Printf.sprintf "all %d burst requests answered (got %d)" n
       (Hashtbl.length seen))
    true
    (Hashtbl.length seen = n);
  for i = 1 to n do
    let id = Printf.sprintf "s%d" i in
    check bool_t (id ^ ": exactly one terminal response") true
      (Hashtbl.find_opt seen id = Some 1);
    match Hashtbl.find_opt statuses id with
    | Some ("ok" | "degraded" | "rejected") -> ()
    (* Under chaos an injected fault may legitimately surface as an
       error frame — still exactly one, still terminal. *)
    | Some "error" when chaos -> ()
    | st ->
      Alcotest.failf "%s: non-terminal status %s" id
        (Option.value st ~default:"<none>")
  done;
  Option.iter (fun p -> try Sys.remove p with Sys_error _ -> ()) cache_path;
  check bool_t "no leaked domains after serve soak" true
    (Exec.Pool.active_domains () = before)

let test_soak_serve () = run_serve_burst ~chaos:false ()

(* The ISSUE-7 chaos gate: every catalogued faultpoint armed at once
   (CHAOS_SEED selects the draw sequence; CI runs a small seed matrix),
   double the burst of the clean leg, result cache journalled with
   fsync so the journal points probe. Invariants are the clean leg's —
   exactly one terminal response per request, drain within grace, zero
   leaked domains — plus: the seam actually fired, and disabling it
   restores the clean path. *)
let test_soak_serve_chaos () =
  let seed =
    match Option.bind (Sys.getenv_opt "CHAOS_SEED") int_of_string_opt with
    | Some s -> s
    | None -> 1
  in
  Faultpoint.configure_exn ~seed "*=0.05";
  Fun.protect ~finally:Faultpoint.disable (fun () ->
      run_serve_burst ~chaos:true ();
      check bool_t "chaos seam fired at least once" true
        (Faultpoint.total_fired () > 0));
  check bool_t "seam off after chaos leg" false (Faultpoint.on ())

let () =
  Alcotest.run "soak"
    [
      ( "chaos",
        [
          Alcotest.test_case "randomized soak" `Quick test_soak;
          Alcotest.test_case "parallel randomized soak" `Quick
            test_soak_parallel;
          Alcotest.test_case "degenerate corners" `Quick test_soak_corners;
        ] );
      ( "serve",
        [
          Alcotest.test_case "overload burst, drain mid-flight" `Quick
            test_soak_serve;
          Alcotest.test_case "chaos burst: every faultpoint armed" `Quick
            test_soak_serve_chaos;
        ] );
    ]
