(* Tests for the §5 extensions: adaptive strategies, Yellow Pages,
   Signature, bandwidth-limited paging, imperfect detection. *)

open Confcall

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int
let float_t eps = Alcotest.float eps
let qt = QCheck_alcotest.to_alcotest

(* -------------------- Adaptive -------------------- *)

let test_oblivious_policy_replays_strategy () =
  (* Evaluating a fixed strategy through the adaptive machinery must
     reproduce Lemma 2.1 exactly. *)
  let rng = Prob.Rng.create ~seed:61 in
  for _ = 1 to 15 do
    let inst = Instance.random_uniform_simplex rng ~m:2 ~c:7 ~d:3 in
    let s = (Greedy.solve inst).Order_dp.strategy in
    let via_policy = Adaptive.evaluate_exact inst (Adaptive.oblivious_policy s) in
    check (float_t 1e-9) "replay = formula"
      (Strategy.expected_paging inst s)
      via_policy
  done

let test_adaptive_never_worse_than_oblivious () =
  let rng = Prob.Rng.create ~seed:62 in
  for _ = 1 to 15 do
    let m = 2 and c = 6 and d = 3 in
    let inst = Instance.random_uniform_simplex rng ~m ~c ~d in
    let oblivious = (Greedy.solve inst).Order_dp.expected_paging in
    let adaptive = Adaptive.greedy_adaptive_ep inst in
    if adaptive > oblivious +. 1e-9 then
      Alcotest.failf "adaptive %.6f worse than oblivious %.6f" adaptive
        oblivious
  done

let test_adaptive_exact_matches_monte_carlo () =
  let rng = Prob.Rng.create ~seed:63 in
  let inst = Instance.random_uniform_simplex rng ~m:2 ~c:6 ~d:2 in
  let policy = Adaptive.greedy_policy inst in
  let exact = Adaptive.evaluate_exact inst policy in
  let mc = Adaptive.evaluate_monte_carlo inst policy rng ~trials:40_000 in
  let halfwidth = 4.0 *. Prob.Stats.ci95_halfwidth mc in
  if abs_float (mc.Prob.Stats.mean -. exact) > halfwidth then
    Alcotest.failf "adaptive exact %.4f vs MC %.4f ± %.4f" exact
      mc.Prob.Stats.mean halfwidth

let test_adaptive_single_device_matches_optimal () =
  (* With m = 1 there is no useful feedback before the device is found,
     so adaptive greedy equals the (optimal) oblivious DP. *)
  let rng = Prob.Rng.create ~seed:64 in
  for _ = 1 to 10 do
    let inst = Instance.random_uniform_simplex rng ~m:1 ~c:6 ~d:3 in
    let oblivious = (Greedy.solve inst).Order_dp.expected_paging in
    let adaptive = Adaptive.greedy_adaptive_ep inst in
    check (float_t 1e-9) "m=1 adaptive = oblivious" oblivious adaptive
  done

let test_adaptive_guard () =
  let inst = Instance.all_uniform ~m:8 ~c:30 ~d:2 in
  match Adaptive.evaluate_exact inst (Adaptive.greedy_policy inst) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected c^m guard"

(* -------------------- Yellow Pages -------------------- *)

let test_yellow_pages_better_than_find_all () =
  let rng = Prob.Rng.create ~seed:71 in
  for _ = 1 to 10 do
    let inst = Instance.random_uniform_simplex rng ~m:3 ~c:8 ~d:3 in
    let yp = (Yellow_pages.solve inst).Order_dp.expected_paging in
    let all = (Greedy.solve inst).Order_dp.expected_paging in
    check bool_t "YP <= conference" true (yp <= all +. 1e-9)
  done

let test_yellow_pages_vs_exhaustive () =
  let rng = Prob.Rng.create ~seed:72 in
  for _ = 1 to 15 do
    let inst = Instance.random_uniform_simplex rng ~m:2 ~c:7 ~d:2 in
    let heur = (Yellow_pages.solve inst).Order_dp.expected_paging in
    let opt = (Yellow_pages.exhaustive inst).Optimal.expected_paging in
    check bool_t "heuristic >= opt" true (heur >= opt -. 1e-9);
    (* The combined heuristic is decent on random instances. *)
    check bool_t "within factor 2 on random instances" true
      (heur <= (2.0 *. opt) +. 1e-9)
  done

let prop_best_single_device_within_m =
  (* The m-approximation claim for the best-single-device policy, checked
     against exhaustive find-any optima. *)
  QCheck.Test.make ~name:"best-single-device <= m x OPT (find-any)" ~count:40
    (QCheck.int_range 1 1000000) (fun seed ->
      let rng = Prob.Rng.create ~seed in
      let m = 2 + Prob.Rng.int rng 2 in
      let c = 4 + Prob.Rng.int rng 4 in
      let d = 2 in
      let inst = Instance.random_uniform_simplex rng ~m ~c ~d in
      let bsd = (Yellow_pages.best_single_device inst).Order_dp.expected_paging in
      let opt = (Yellow_pages.exhaustive inst).Optimal.expected_paging in
      bsd <= (float_of_int m *. opt) +. 1e-9)

let test_adversarial_instance_shape () =
  let inst = Yellow_pages.adversarial_instance ~blocks:3 ~d:2 in
  check int_t "m" 4 inst.Instance.m;
  check int_t "c" 12 inst.Instance.c;
  check bool_t "valid" true (Instance.validate ~d:2 inst.Instance.p = Ok ())

let test_adversarial_hurts_natural_heuristic () =
  (* The natural heuristic must be strictly worse than the best-single-
     device heuristic on the adversarial family, with a growing gap. *)
  let gap blocks =
    let inst = Yellow_pages.adversarial_instance ~blocks ~d:2 in
    let nat = (Yellow_pages.natural_heuristic inst).Order_dp.expected_paging in
    let single = (Yellow_pages.best_single_device inst).Order_dp.expected_paging in
    nat /. single
  in
  let g2 = gap 2 and g6 = gap 6 and g12 = gap 12 in
  check bool_t "suboptimal at 2 blocks" true (g2 > 1.02);
  check bool_t "gap grows" true (g12 > g6 && g6 > g2)

(* -------------------- Signature -------------------- *)

let test_signature_endpoints () =
  (* k = m reduces to Find_all; k = 1 to Find_any. *)
  let rng = Prob.Rng.create ~seed:81 in
  for _ = 1 to 10 do
    let inst = Instance.random_uniform_simplex rng ~m:3 ~c:8 ~d:3 in
    check (float_t 1e-9) "k=m = conference"
      (Greedy.solve inst).Order_dp.expected_paging
      (Signature.solve inst ~k:3).Order_dp.expected_paging;
    check (float_t 1e-9) "k=1 = yellow pages"
      (Greedy.solve ~objective:Objective.Find_any inst).Order_dp.expected_paging
      (Signature.solve inst ~k:1).Order_dp.expected_paging
  done

let test_signature_sweep_monotone () =
  let rng = Prob.Rng.create ~seed:82 in
  for _ = 1 to 10 do
    let inst = Instance.random_uniform_simplex rng ~m:5 ~c:10 ~d:3 in
    let sweep = Signature.sweep inst in
    check int_t "length" 5 (Array.length sweep);
    for i = 0 to 3 do
      check bool_t "monotone" true (sweep.(i) <= sweep.(i + 1) +. 1e-9)
    done
  done

let test_signature_bad_k () =
  let inst = Instance.all_uniform ~m:2 ~c:4 ~d:2 in
  (match Signature.solve inst ~k:0 with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "k=0 accepted");
  match Signature.solve inst ~k:3 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "k>m accepted"

let test_signature_vs_exhaustive () =
  let rng = Prob.Rng.create ~seed:83 in
  for _ = 1 to 10 do
    let inst = Instance.random_uniform_simplex rng ~m:3 ~c:6 ~d:2 in
    let heur = (Signature.solve inst ~k:2).Order_dp.expected_paging in
    let opt = (Signature.exhaustive inst ~k:2).Optimal.expected_paging in
    check bool_t "heuristic >= opt" true (heur >= opt -. 1e-9)
  done

(* -------------------- Bandwidth -------------------- *)

let test_bandwidth_feasibility () =
  check bool_t "feasible" true (Bandwidth.feasible ~c:10 ~d:5 ~b:2);
  check bool_t "tight" true (Bandwidth.feasible ~c:10 ~d:2 ~b:5);
  check bool_t "infeasible" false (Bandwidth.feasible ~c:10 ~d:3 ~b:3)

let test_bandwidth_respects_cap () =
  let rng = Prob.Rng.create ~seed:91 in
  for _ = 1 to 15 do
    let inst = Instance.random_uniform_simplex rng ~m:2 ~c:12 ~d:4 in
    let r = Bandwidth.solve inst ~b:4 in
    Array.iter
      (fun s -> check bool_t "cap" true (s <= 4))
      r.Order_dp.sizes
  done

let test_bandwidth_infeasible_raises () =
  let inst = Instance.all_uniform ~m:1 ~c:12 ~d:2 in
  match Bandwidth.solve inst ~b:3 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected infeasibility"

let test_bandwidth_monotone_in_b () =
  (* Looser caps can only help. *)
  let rng = Prob.Rng.create ~seed:92 in
  for _ = 1 to 10 do
    let inst = Instance.random_uniform_simplex rng ~m:2 ~c:12 ~d:4 in
    let eps = Bandwidth.sweep inst ~bs:[| 3; 4; 6; 8; 12 |] in
    for i = 0 to Array.length eps - 2 do
      check bool_t "monotone" true (eps.(i + 1) <= eps.(i) +. 1e-9)
    done
  done

let test_bandwidth_matches_exhaustive_within_order () =
  (* On instances where exhaustive search is possible, capped greedy must
     be >= capped optimum and both <= c. *)
  let rng = Prob.Rng.create ~seed:93 in
  for _ = 1 to 10 do
    let inst = Instance.random_uniform_simplex rng ~m:2 ~c:8 ~d:4 in
    let heur = (Bandwidth.solve inst ~b:3).Order_dp.expected_paging in
    let opt = (Bandwidth.exhaustive inst ~b:3).Optimal.expected_paging in
    check bool_t "heur >= opt" true (heur >= opt -. 1e-9);
    check bool_t "heur <= c" true (heur <= 8.0 +. 1e-9)
  done

let test_bandwidth_unconstrained_matches_greedy () =
  let rng = Prob.Rng.create ~seed:94 in
  let inst = Instance.random_uniform_simplex rng ~m:2 ~c:10 ~d:3 in
  check (float_t 1e-12) "b = c is unconstrained"
    (Greedy.solve inst).Order_dp.expected_paging
    (Bandwidth.solve inst ~b:10).Order_dp.expected_paging

(* -------------------- Miss (imperfect detection) -------------------- *)

let test_miss_perfect_detection_equals_strategy_cost () =
  (* q = 1 and a partition schedule is the standard model. *)
  let inst = Instance.create ~d:2 [| [| 0.7; 0.2; 0.1 |] |] in
  let s = Strategy.create [| [| 0 |]; [| 1; 2 |] |] in
  let schedule = Miss.repeat_strategy s ~cycles:1 in
  let ep, success = Miss.single_device_exact inst ~q:1.0 ~schedule in
  check (float_t 1e-12) "EP" 1.6 ep;
  check (float_t 1e-12) "finds surely" 1.0 success

let test_miss_lower_q_costs_more () =
  let inst = Instance.create ~d:2 [| [| 0.7; 0.2; 0.1 |] |] in
  let s = Strategy.create [| [| 0 |]; [| 1; 2 |] |] in
  let schedule = Miss.repeat_strategy s ~cycles:4 in
  let ep1, s1 = Miss.single_device_exact inst ~q:1.0 ~schedule in
  let ep2, s2 = Miss.single_device_exact inst ~q:0.6 ~schedule in
  check bool_t "more cost" true (ep2 > ep1);
  check bool_t "less success" true (s2 < s1);
  check bool_t "repage recovers most" true (s2 > 0.95)

let test_miss_exact_matches_simulation () =
  let inst = Instance.create ~d:3 [| [| 0.5; 0.3; 0.2 |] |] in
  let s = Strategy.create [| [| 0 |]; [| 1 |]; [| 2 |] |] in
  let schedule = Miss.repeat_strategy s ~cycles:3 in
  let exact, _ = Miss.single_device_exact inst ~q:0.7 ~schedule in
  let rng = Prob.Rng.create ~seed:101 in
  let summary, _ = Miss.simulate inst ~q:0.7 ~schedule rng ~trials:60_000 in
  let halfwidth = 4.0 *. Prob.Stats.ci95_halfwidth summary in
  if abs_float (summary.Prob.Stats.mean -. exact) > halfwidth then
    Alcotest.failf "miss model: exact %.4f vs MC %.4f ± %.4f" exact
      summary.Prob.Stats.mean halfwidth

let test_optimal_look_sequence_greedy_property () =
  (* The sequence must schedule looks in non-increasing marginal
     detection probability. *)
  let p = [| 0.6; 0.3; 0.1 |] and q = [| 0.5; 0.9; 1.0 |] in
  let seq = Miss.optimal_look_sequence ~horizon:8 p q in
  let marginal = Array.map2 (fun pi qi -> pi *. qi) p q in
  let looks_done = Array.make 3 0 in
  let prev = ref infinity in
  Array.iter
    (fun j ->
      let m = marginal.(j) *. ((1.0 -. q.(j)) ** float_of_int looks_done.(j)) in
      check bool_t "non-increasing marginals" true (m <= !prev +. 1e-12);
      prev := m;
      looks_done.(j) <- looks_done.(j) + 1)
    seq

let test_detection_curve_monotone () =
  let p = [| 0.5; 0.5 |] and q = [| 0.4; 0.8 |] in
  let seq = Miss.optimal_look_sequence ~horizon:10 p q in
  let curve = Miss.detection_curve p q seq in
  for t = 0 to Array.length curve - 2 do
    check bool_t "monotone" true (curve.(t) <= curve.(t + 1) +. 1e-12)
  done;
  check bool_t "approaches 1" true (curve.(10) > 0.9)

let test_expected_looks_beats_bad_order () =
  (* Greedy look order must not lose to a fixed round-robin order. *)
  let p = [| 0.7; 0.2; 0.1 |] and q = [| 0.9; 0.9; 0.9 |] in
  let horizon = 12 in
  let greedy_e, _ = Miss.expected_looks ~horizon p q in
  let round_robin = Array.init horizon (fun t -> t mod 3) in
  let curve = Miss.detection_curve p q round_robin in
  let rr_e = ref 0.0 in
  for t = 0 to horizon - 1 do
    rr_e := !rr_e +. (1.0 -. curve.(t))
  done;
  check bool_t "greedy <= round robin" true (greedy_e <= !rr_e +. 1e-9)

let test_miss_conference_simulation () =
  let rng = Prob.Rng.create ~seed:102 in
  let inst = Instance.random_uniform_simplex rng ~m:2 ~c:6 ~d:3 in
  let s = (Greedy.solve inst).Order_dp.strategy in
  let schedule = Miss.repeat_strategy s ~cycles:5 in
  let summary, success = Miss.simulate inst ~q:0.8 ~schedule rng ~trials:5000 in
  check bool_t "success high with repaging" true (success > 0.95);
  check bool_t "cost above perfect-detection EP" true
    (summary.Prob.Stats.mean >= (Greedy.solve inst).Order_dp.expected_paging -. 0.2)

let prop_miss_q1_matches_lemma21 =
  QCheck.Test.make ~name:"q=1 single-device miss model = Lemma 2.1" ~count:50
    (QCheck.int_range 1 100000) (fun seed ->
      let rng = Prob.Rng.create ~seed in
      let c = 3 + Prob.Rng.int rng 6 in
      let d = Stdlib.min c (1 + Prob.Rng.int rng 3) in
      let inst = Instance.random_uniform_simplex rng ~m:1 ~c ~d in
      let s = (Greedy.solve inst).Order_dp.strategy in
      let schedule = Miss.repeat_strategy s ~cycles:1 in
      let ep, _ = Miss.single_device_exact inst ~q:1.0 ~schedule in
      abs_float (ep -. Strategy.expected_paging inst s) < 1e-9)

let () =
  Alcotest.run "extensions"
    [
      ( "adaptive",
        [
          Alcotest.test_case "oblivious replay" `Quick
            test_oblivious_policy_replays_strategy;
          Alcotest.test_case "never worse" `Slow
            test_adaptive_never_worse_than_oblivious;
          Alcotest.test_case "exact vs MC" `Slow
            test_adaptive_exact_matches_monte_carlo;
          Alcotest.test_case "m=1 equals oblivious" `Quick
            test_adaptive_single_device_matches_optimal;
          Alcotest.test_case "state guard" `Quick test_adaptive_guard;
        ] );
      ( "yellow-pages",
        [
          Alcotest.test_case "cheaper than find-all" `Quick
            test_yellow_pages_better_than_find_all;
          Alcotest.test_case "vs exhaustive" `Slow test_yellow_pages_vs_exhaustive;
          Alcotest.test_case "adversarial shape" `Quick
            test_adversarial_instance_shape;
          Alcotest.test_case "natural heuristic hurt" `Quick
            test_adversarial_hurts_natural_heuristic;
          qt prop_best_single_device_within_m;
        ] );
      ( "signature",
        [
          Alcotest.test_case "endpoints" `Quick test_signature_endpoints;
          Alcotest.test_case "sweep monotone" `Quick test_signature_sweep_monotone;
          Alcotest.test_case "bad k" `Quick test_signature_bad_k;
          Alcotest.test_case "vs exhaustive" `Slow test_signature_vs_exhaustive;
        ] );
      ( "bandwidth",
        [
          Alcotest.test_case "feasibility" `Quick test_bandwidth_feasibility;
          Alcotest.test_case "respects cap" `Quick test_bandwidth_respects_cap;
          Alcotest.test_case "infeasible raises" `Quick
            test_bandwidth_infeasible_raises;
          Alcotest.test_case "monotone in b" `Quick test_bandwidth_monotone_in_b;
          Alcotest.test_case "vs exhaustive" `Slow
            test_bandwidth_matches_exhaustive_within_order;
          Alcotest.test_case "b=c unconstrained" `Quick
            test_bandwidth_unconstrained_matches_greedy;
        ] );
      ( "miss",
        [
          Alcotest.test_case "perfect detection" `Quick
            test_miss_perfect_detection_equals_strategy_cost;
          Alcotest.test_case "lower q costs more" `Quick
            test_miss_lower_q_costs_more;
          Alcotest.test_case "exact vs simulation" `Slow
            test_miss_exact_matches_simulation;
          Alcotest.test_case "greedy look order" `Quick
            test_optimal_look_sequence_greedy_property;
          Alcotest.test_case "detection curve" `Quick test_detection_curve_monotone;
          Alcotest.test_case "beats round robin" `Quick
            test_expected_looks_beats_bad_order;
          Alcotest.test_case "conference simulation" `Slow
            test_miss_conference_simulation;
          qt prop_miss_q1_matches_lemma21;
        ] );
    ]
