(* Differential + GC-regression suite for the flat hot path (Flat).

   The legacy list-based solvers are the oracle: every flat mirror must
   return the bit-identical expected paging and strategy on random and
   adversarial instances, across solver specs, objectives and domain
   counts. A rational-oracle pin re-checks the flat EPs against the
   exact arithmetic path to ≤ 1e-12·c, so the two float paths cannot
   drift together. The GC section asserts the zero-minor-words contract
   of the run_* cores, and the property section drives the incremental
   local-search EP delta through random accepted/rejected move
   sequences against full re-evaluation. *)

open Confcall

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int

(* -------------------- instance generators -------------------- *)

(* Adversarial shapes alongside the random ones: exact weight ties (the
   order comparator must fall back to the index), heavy skew (survivor
   products underflow toward 0), low-entropy grids (many equal
   probabilities, many DP ties), and the m = 1 / d = 1 / d = c edges. *)
let random_instance rng ~kind ~m ~c ~d =
  match kind mod 4 with
  | 0 -> Instance.random_uniform_simplex rng ~m ~c ~d
  | 1 -> Instance.random_zipf rng ~s:(1.1 +. Prob.Rng.unit_float rng) ~m ~c ~d
  | 2 ->
    (* all rows uniform: every cell weight is exactly equal *)
    let p = Array.make_matrix m c (1.0 /. float_of_int c) in
    Instance.create ~d p
  | _ ->
    (* coarse integer grid: lots of exact ties, exactly representable *)
    let p =
      Array.init m (fun _ ->
          let w = Array.init c (fun _ -> Prob.Rng.int rng 4) in
          if Array.for_all (fun x -> x = 0) w then w.(Prob.Rng.int rng c) <- 1;
          let s = float_of_int (Array.fold_left ( + ) 0 w) in
          Array.map (fun n -> float_of_int n /. s) w)
    in
    Instance.create ~d p

let random_dims rng =
  let m = 1 + Prob.Rng.int rng 5 in
  let c = 2 + Prob.Rng.int rng 12 in
  let d = 1 + Prob.Rng.int rng c in
  (m, c, d)

let objective_for rng ~m trial =
  match trial mod 3 with
  | 0 -> Objective.Find_all
  | 1 -> Objective.Find_any
  | _ -> Objective.Find_at_least (1 + Prob.Rng.int rng m)

let random_order rng c =
  let order = Array.init c (fun j -> j) in
  for j = c - 1 downto 1 do
    let k = Prob.Rng.int rng (j + 1) in
    let t = order.(j) in
    order.(j) <- order.(k);
    order.(k) <- t
  done;
  order

let same_outcome what trial (legacy : Solver.outcome) (flat : Solver.outcome) =
  if legacy.Solver.expected_paging <> flat.Solver.expected_paging then
    Alcotest.failf "%s (trial %d): EP differs: legacy %.17g flat %.17g" what
      trial legacy.Solver.expected_paging flat.Solver.expected_paging;
  if not (Strategy.equal legacy.Solver.strategy flat.Solver.strategy) then
    Alcotest.failf "%s (trial %d): strategies differ: legacy %s flat %s" what
      trial
      (Strategy.to_string legacy.Solver.strategy)
      (Strategy.to_string flat.Solver.strategy);
  if legacy.Solver.exact <> flat.Solver.exact then
    Alcotest.failf "%s (trial %d): exact flag differs" what trial

(* -------------------- differential: solver specs -------------------- *)

(* ≥ 200 instances (random + adversarial), one shared arena rebound
   across all of them — so the cache-invalidation logic is exercised as
   hard as the numerics. Every spec with a flat mirror must match the
   legacy path bit for bit. *)
let test_differential_specs () =
  let rng = Prob.Rng.create ~seed:0xF1A7 in
  let arena = Flat.create () in
  let trials = 240 in
  for trial = 1 to trials do
    let m, c, d = random_dims rng in
    let inst = random_instance rng ~kind:trial ~m ~c ~d in
    let objective = objective_for rng ~m trial in
    let solve ?arena spec = Solver.solve ~objective ?arena spec inst in
    let specs =
      [
        Solver.Greedy;
        Solver.Page_all;
        Solver.Within_order (random_order rng c);
        Solver.Bandwidth_limited (1 + ((c + d - 1) / d));
        Solver.Local_search;
      ]
      @ (if trial mod 10 = 0 then [ Solver.Robust { eps = 0.05; tv = infinity } ]
         else [])
    in
    List.iter
      (fun spec ->
        let legacy = solve spec in
        let flat = solve ~arena spec in
        same_outcome (Solver.spec_to_string spec) trial legacy flat)
      specs
  done

(* Local search must also agree on the iteration count: the flat climb
   claims to replay the legacy scan move for move. *)
let test_differential_hill_climb_iterations () =
  let rng = Prob.Rng.create ~seed:0x1C11 in
  let arena = Flat.create () in
  for trial = 1 to 40 do
    let m, c, d = random_dims rng in
    let inst = random_instance rng ~kind:trial ~m ~c ~d in
    let objective = objective_for rng ~m trial in
    let legacy = Local_search.hill_climb ~objective inst in
    let flat = Flat.hill_climb ~objective arena inst in
    check int_t "iterations" legacy.Local_search.iterations
      flat.Local_search.iterations;
    check bool_t "ep bits" true
      (legacy.Local_search.expected_paging = flat.Local_search.expected_paging);
    check bool_t "strategy" true
      (Strategy.equal legacy.Local_search.strategy flat.Local_search.strategy)
  done

(* Coarse DP: block boundaries must not perturb the per-device mass
   chains — flat and legacy agree bitwise for every block size,
   including block = 1 (≡ the full DP). *)
let test_differential_coarse () =
  let rng = Prob.Rng.create ~seed:0xC0A2 in
  let arena = Flat.create () in
  let blocks = [| 1; 2; 3; 5; 16 |] in
  for trial = 1 to 60 do
    let m = 1 + Prob.Rng.int rng 4 in
    let c = 4 + Prob.Rng.int rng 30 in
    let d = 1 + Prob.Rng.int rng (min c 6) in
    let inst = random_instance rng ~kind:trial ~m ~c ~d in
    let objective = objective_for rng ~m trial in
    let block = blocks.(trial mod Array.length blocks) in
    let order = Instance.weight_order inst in
    let legacy = Order_dp.solve_coarse ~objective ~block inst ~order in
    let flat = Flat.coarse ~objective ~block arena inst in
    check bool_t "coarse ep bits" true
      (legacy.Order_dp.expected_paging = flat.Order_dp.expected_paging);
    check bool_t "coarse strategy" true
      (Strategy.equal legacy.Order_dp.strategy flat.Order_dp.strategy)
  done

(* Rational-oracle pin: the flat EP must sit within 1e-12·c of the
   exact-arithmetic evaluation of the same strategy — bit-identity with
   the legacy float path alone would be satisfied by two paths that are
   wrong together. *)
let test_rational_oracle_pin () =
  let rng = Prob.Rng.create ~seed:0x0A17 in
  let arena = Flat.create () in
  for trial = 1 to 60 do
    let m = 1 + Prob.Rng.int rng 3 in
    let c = 2 + Prob.Rng.int rng 8 in
    let d = 1 + Prob.Rng.int rng c in
    let rows_q =
      Array.init m (fun _ ->
          let w = Array.init c (fun _ -> Prob.Rng.int rng 20) in
          if Array.for_all (fun x -> x = 0) w then w.(Prob.Rng.int rng c) <- 1;
          let s = Array.fold_left ( + ) 0 w in
          Array.map (fun n -> Numeric.Rational.of_ints n s) w)
    in
    let exact = Instance.Exact.create ~d rows_q in
    let inst = Instance.Exact.to_float exact in
    let objective = objective_for rng ~m trial in
    List.iter
      (fun (what, r) ->
        let ep_exact =
          Numeric.Rational.to_float
            (Strategy.expected_paging_exact ~objective exact
               r.Order_dp.strategy)
        in
        if
          abs_float (r.Order_dp.expected_paging -. ep_exact)
          > 1e-12 *. float_of_int c
        then
          Alcotest.failf "%s (trial %d): flat EP %.17g vs exact %.17g" what
            trial r.Order_dp.expected_paging ep_exact)
      [
        ("greedy", Flat.greedy ~objective arena inst);
        ("coarse", Flat.coarse ~objective ~block:3 arena inst);
        ( "within-order",
          Flat.order_dp ~objective arena inst ~order:(random_order rng c) );
      ]
  done

(* -------------------- differential: runner, domains 1 and 4 ------- *)

let runner_winner_ep ?pool ?arena inst ~objective =
  let report = Runner.run ~objective ?pool ?arena inst in
  match report.Runner.winner with
  | Some (spec, o) -> (spec, o.Solver.expected_paging, o.Solver.strategy)
  | None -> Alcotest.fail "runner produced no winner"

let test_runner_differential_domains () =
  let rng = Prob.Rng.create ~seed:0x40FE in
  let arena = Flat.create () in
  let compare_one ?pool trial =
    let m, c, d = random_dims rng in
    let inst = random_instance rng ~kind:trial ~m ~c ~d in
    let objective = objective_for rng ~m trial in
    let wl, el, sl = runner_winner_ep ?pool inst ~objective in
    let wf, ef, sf = runner_winner_ep ?pool ~arena inst ~objective in
    check bool_t "same winner spec" true (wl = wf);
    check bool_t "same winner ep" true (el = ef);
    check bool_t "same winner strategy" true (Strategy.equal sl sf)
  in
  for trial = 1 to 12 do
    compare_one trial
  done;
  Exec.Pool.with_pool ~domains:4 (fun pool ->
      for trial = 13 to 24 do
        compare_one ~pool trial
      done)

(* -------------------- GC regression -------------------- *)

let steady_instance () =
  let rng = Prob.Rng.create ~seed:0x6C60 in
  Instance.random_uniform_simplex rng ~m:6 ~c:48 ~d:5

let test_zero_alloc_cores () =
  let inst = steady_instance () in
  List.iter
    (fun (oname, objective) ->
      let arena = Flat.create () in
      Flat.prepare ~objective arena inst;
      Testutil.assert_no_minor_alloc
        (Printf.sprintf "run_greedy[%s]" oname)
        (fun () -> Flat.run_greedy arena);
      Testutil.assert_no_minor_alloc
        (Printf.sprintf "run_order_dp[%s]" oname)
        (fun () -> Flat.run_order_dp ~max_group:12 arena);
      Testutil.assert_no_minor_alloc
        (Printf.sprintf "run_page_all[%s]" oname)
        (fun () -> Flat.run_page_all arena);
      Testutil.assert_no_minor_alloc
        (Printf.sprintf "run_hill_climb[%s]" oname)
        (fun () -> Flat.run_hill_climb arena);
      Testutil.assert_no_minor_alloc
        (Printf.sprintf "run_hill_climb_fast[%s]" oname)
        (fun () -> Flat.run_hill_climb_fast arena);
      Flat.prepare_coarse ~objective ~block:8 arena inst;
      Testutil.assert_no_minor_alloc
        (Printf.sprintf "run_coarse[%s]" oname)
        (fun () -> Flat.run_coarse arena))
    [
      ("find-all", Objective.Find_all);
      ("find-any", Objective.Find_any);
      ("find-2", Objective.Find_at_least 2);
    ]

(* Rebinding the arena to another instance (prepare itself may allocate
   — it sorts and rebuilds tables) must not poison the cores: right
   after every rebind the run_* entry points are allocation-free
   again. *)
let test_zero_alloc_after_rebind () =
  let rng = Prob.Rng.create ~seed:0x2EB1 in
  let insts =
    Array.init 4 (fun k ->
        Instance.random_uniform_simplex rng ~m:(3 + k) ~c:(30 + (5 * k)) ~d:4)
  in
  let arena = Flat.create () in
  Array.iteri
    (fun k inst ->
      Flat.prepare arena inst;
      Testutil.assert_no_minor_alloc
        (Printf.sprintf "run_greedy after rebind %d" k)
        (fun () -> Flat.run_greedy arena);
      Testutil.assert_no_minor_alloc
        (Printf.sprintf "run_hill_climb after rebind %d" k)
        (fun () -> Flat.run_hill_climb arena))
    insts

(* -------------------- property: incremental EP delta -------------- *)

(* Drive the delta machinery through random move sequences. After every
   rejected candidate (predict) the maintained EP must be untouched;
   after every accepted move (apply, deliberately without resync) the
   maintained EP must match a full re-evaluation to float-drift
   tolerance, and must equal the prediction of that same move bit for
   bit (predict and apply share the arithmetic). *)
let test_delta_ep_property () =
  let rng = Prob.Rng.create ~seed:0xDE17A in
  let arena = Flat.create () in
  for seq = 1 to 100 do
    let m = 1 + Prob.Rng.int rng 4 in
    let c = 3 + Prob.Rng.int rng 10 in
    let d = 2 + Prob.Rng.int rng (c - 1) in
    let inst = random_instance rng ~kind:seq ~m ~c ~d in
    let objective = objective_for rng ~m seq in
    (* random strategy with rounds ≤ d *)
    let rounds = 2 + Prob.Rng.int rng (d - 1) in
    let rounds = min rounds c in
    let order = random_order rng c in
    let sizes = Array.make rounds 1 in
    for _ = 1 to c - rounds do
      let r = Prob.Rng.int rng rounds in
      sizes.(r) <- sizes.(r) + 1
    done;
    let strategy = Strategy.of_sizes ~order ~sizes in
    Flat.Ls.load ~objective arena inst strategy;
    let tol = 1e-9 *. float_of_int c in
    let check_consistent what step =
      let maintained = Flat.Ls.ep arena in
      let full = Flat.Ls.ep_full arena in
      if abs_float (maintained -. full) > tol then
        Alcotest.failf
          "seq %d step %d (%s): maintained EP %.17g vs full %.17g" seq step
          what maintained full
    in
    check_consistent "load" 0;
    for step = 1 to 20 do
      let relocate = Prob.Rng.bool rng in
      if relocate then begin
        let cell = Prob.Rng.int rng c in
        let src = Flat.Ls.round_of arena cell in
        let target = Prob.Rng.int rng rounds in
        if target <> src && Flat.Ls.count arena src > 1 then begin
          let before = Flat.Ls.ep arena in
          let predicted = Flat.Ls.predict_relocate arena ~cell ~target in
          if Flat.Ls.ep arena <> before then
            Alcotest.failf "seq %d step %d: predict_relocate moved the EP"
              seq step;
          check_consistent "rejected relocate" step;
          if Prob.Rng.bool rng then begin
            Flat.Ls.apply_relocate arena ~cell ~target;
            if Flat.Ls.ep arena <> predicted then
              Alcotest.failf
                "seq %d step %d: applied relocate EP %.17g <> predicted %.17g"
                seq step (Flat.Ls.ep arena) predicted;
            check_consistent "accepted relocate" step
          end
        end
      end
      else begin
        let p = Prob.Rng.int rng c and q = Prob.Rng.int rng c in
        if p <> q && Flat.Ls.round_of arena p <> Flat.Ls.round_of arena q
        then begin
          let before = Flat.Ls.ep arena in
          let predicted = Flat.Ls.predict_swap arena ~p ~q in
          if Flat.Ls.ep arena <> before then
            Alcotest.failf "seq %d step %d: predict_swap moved the EP" seq
              step;
          check_consistent "rejected swap" step;
          if Prob.Rng.bool rng then begin
            Flat.Ls.apply_swap arena ~p ~q;
            if Flat.Ls.ep arena <> predicted then
              Alcotest.failf
                "seq %d step %d: applied swap EP %.17g <> predicted %.17g" seq
                step (Flat.Ls.ep arena) predicted;
            check_consistent "accepted swap" step
          end
        end
      end
    done
  done

(* The fast climb must land within float tolerance of the mirror climb
   (same move set and threshold; only candidate scoring arithmetic
   differs). *)
let test_fast_climb_agrees () =
  let rng = Prob.Rng.create ~seed:0xFA57 in
  let arena = Flat.create () in
  for trial = 1 to 40 do
    let m, c, d = random_dims rng in
    let inst = random_instance rng ~kind:trial ~m ~c ~d in
    let objective = objective_for rng ~m trial in
    let mirror = Flat.hill_climb ~objective arena inst in
    let fast = Flat.hill_climb_fast ~objective arena inst in
    let tol = 1e-9 *. float_of_int c in
    if
      abs_float
        (mirror.Local_search.expected_paging
        -. fast.Local_search.expected_paging)
      > tol
    then
      Alcotest.failf "trial %d: mirror EP %.17g vs fast EP %.17g" trial
        mirror.Local_search.expected_paging fast.Local_search.expected_paging
  done

(* -------------------- boundary -------------------- *)

let test_named_dimension_errors () =
  let expect_msg what input fragment =
    match Instance.of_string input with
    | _ -> Alcotest.failf "%s: accepted a degenerate header" what
    | exception Invalid_argument msg ->
      let contains hay needle =
        let nh = String.length hay and nn = String.length needle in
        let rec go i =
          i + nn <= nh && (String.sub hay i nn = needle || go (i + 1))
        in
        go 0
      in
      if not (contains msg fragment) then
        Alcotest.failf "%s: error %S does not name the axis (%S)" what msg
          fragment
  in
  expect_msg "m = 0" "0 4 2\n" "no devices";
  expect_msg "m < 0" "-3 4 2\n" "no devices";
  expect_msg "c = 0" "2 0 1\n" "no cells"

let () =
  Alcotest.run "flat"
    [
      ( "differential",
        [
          Alcotest.test_case "solver specs, 240 instances" `Quick
            test_differential_specs;
          Alcotest.test_case "hill-climb iteration parity" `Quick
            test_differential_hill_climb_iterations;
          Alcotest.test_case "coarse DP all block sizes" `Quick
            test_differential_coarse;
          Alcotest.test_case "rational-oracle pin" `Quick
            test_rational_oracle_pin;
          Alcotest.test_case "runner, domains 1 and 4" `Quick
            test_runner_differential_domains;
        ] );
      ( "gc-regression",
        [
          Alcotest.test_case "zero minor words per solve" `Quick
            test_zero_alloc_cores;
          Alcotest.test_case "zero minor words after rebind" `Quick
            test_zero_alloc_after_rebind;
        ] );
      ( "delta-ep",
        [
          Alcotest.test_case "incremental = full on 100 move sequences" `Quick
            test_delta_ep_property;
          Alcotest.test_case "fast climb agrees with mirror" `Quick
            test_fast_climb_agrees;
        ] );
      ( "boundary",
        [
          Alcotest.test_case "named m=0 / c=0 errors" `Quick
            test_named_dimension_errors;
        ] );
    ]
