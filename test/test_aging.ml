(* Tests for the residence-time aging layer: dwell laws, the semi-Markov
   aging kernel, age-evolved profile estimates, the staleness radius,
   and the simulator's age-aware schemes — plus regression tests for the
   neighbor-less walk rows, Mobility.diffuse argument validation and the
   lazy profile decay. *)

module M = Cellsim.Mobility
module P = Cellsim.Profile
module Sim = Cellsim.Sim

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int
let float_t eps = Alcotest.float eps
let hex8 () = Cellsim.Hex.create ~rows:8 ~cols:8

let tv a b =
  let s = ref 0.0 in
  Array.iteri (fun i x -> s := !s +. abs_float (x -. b.(i))) a;
  0.5 *. !s

let raises_invalid f =
  try
    ignore (f ());
    false
  with Invalid_argument _ -> true

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let random_dist rng n =
  Prob.Dist.normalize (Array.init n (fun _ -> Prob.Rng.float rng 1.0 +. 0.01))

let sample_laws =
  [
    M.Exponential { mean = 6.0 };
    M.Pareto { alpha = 1.6; scale = 3.5 };
    M.Zipf { s = 1.2; cutoff = 20 };
  ]

(* -------------------- residence laws -------------------- *)

let test_residence_survival_hazard () =
  List.iter
    (fun law ->
      check (float_t 0.0) "S(0) = 1" 1.0 (M.residence_survival law 0);
      for a = 0 to 40 do
        let h = M.residence_hazard law a in
        check bool_t "hazard in [0,1]" true (h >= 0.0 && h <= 1.0);
        check bool_t "survival non-increasing" true
          (M.residence_survival law (a + 1)
          <= M.residence_survival law a +. 1e-12)
      done)
    sample_laws;
  (* The memoryless law: constant hazard 1/mean. *)
  let e = M.Exponential { mean = 6.0 } in
  for a = 0 to 20 do
    check (float_t 1e-12) "exp hazard constant" (1.0 /. 6.0)
      (M.residence_hazard e a)
  done;
  (* The heavy tail: hazard decreases with dwell age. *)
  let p = M.Pareto { alpha = 1.6; scale = 3.5 } in
  for a = 0 to 20 do
    check bool_t "pareto hazard decreasing" true
      (M.residence_hazard p (a + 1) <= M.residence_hazard p a +. 1e-12)
  done;
  (* Bounded support: certain departure at the cutoff. *)
  let z = M.Zipf { s = 1.0; cutoff = 5 } in
  check (float_t 1e-12) "zipf exhausts at cutoff" 1.0 (M.residence_hazard z 5)

let test_pareto_with_mean () =
  List.iter
    (fun mean ->
      let law = M.pareto_with_mean ~alpha:1.6 ~mean in
      check (float_t 1e-6) "mean matched" mean (M.residence_mean law))
    [ 2.0; 6.0; 12.0 ];
  check bool_t "alpha <= 1 rejected" true
    (raises_invalid (fun () -> M.pareto_with_mean ~alpha:1.0 ~mean:6.0));
  check bool_t "mean < 1 rejected" true
    (raises_invalid (fun () -> M.pareto_with_mean ~alpha:1.6 ~mean:0.5))

let test_residence_strings () =
  List.iter
    (fun law ->
      match M.residence_of_string (M.residence_to_string law) with
      | Ok law' ->
        check Alcotest.string "roundtrip" (M.residence_to_string law)
          (M.residence_to_string law')
      | Error e -> Alcotest.failf "roundtrip failed: %s" e)
    sample_laws;
  List.iter
    (fun s ->
      check bool_t ("rejects " ^ s) true
        (Result.is_error (M.residence_of_string s)))
    [ ""; "exp"; "exp:0"; "pareto:1.6"; "zipf:1.2:0"; "weibull:2" ]

let test_validate_residence () =
  List.iter
    (fun law -> check bool_t "valid" true (M.validate_residence law = Ok ()))
    sample_laws;
  List.iter
    (fun law ->
      check bool_t "invalid" true (Result.is_error (M.validate_residence law)))
    [
      M.Exponential { mean = 0.5 };
      M.Exponential { mean = nan };
      M.Pareto { alpha = 0.0; scale = 3.0 };
      M.Pareto { alpha = 1.6; scale = 0.0 };
      M.Zipf { s = -0.1; cutoff = 5 };
      M.Zipf { s = 1.0; cutoff = 0 };
    ]

(* -------------------- walk-row regressions -------------------- *)

(* A 1×1 field has a neighbor-less cell: both walk builders used to
   divide by the neighbor count. The cell must now be absorbing. *)
let test_single_cell_walks_absorbing () =
  let h = Cellsim.Hex.create ~rows:1 ~cols:1 in
  let rw = M.random_walk h ~stay:0.3 in
  check (float_t 0.0) "random walk absorbs" 1.0 rw.M.rows.(0).(0);
  let dw = M.drift_walk h ~stay:0.3 ~east_bias:2.0 in
  check (float_t 0.0) "drift walk absorbs" 1.0 dw.M.rows.(0).(0)

let test_create_names_offending_row () =
  match M.create [| [| 0.5; 0.5 |]; [| 0.7; 0.5 |] |] with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument msg ->
    check bool_t "names the row" true (contains msg "row 1");
    check bool_t "names the sum" true (contains msg "1.2")

let test_diffuse_rejects_negative_steps () =
  let h = hex8 () in
  let mob = M.random_walk h ~stay:0.4 in
  let n = Cellsim.Hex.cells h in
  let d = Array.make n (1.0 /. float_of_int n) in
  check bool_t "steps < 0 raises" true
    (raises_invalid (fun () -> M.diffuse mob d ~steps:(-1)));
  check bool_t "steps = 0 fine" true
    (tv (M.diffuse mob d ~steps:0) d = 0.0)

(* -------------------- aging kernel -------------------- *)

let test_aging_validation () =
  let base = M.random_walk (hex8 ()) ~stay:0.5 in
  check bool_t "bad law rejected" true
    (raises_invalid (fun () ->
         M.aging_uniform base (M.Exponential { mean = 0.0 })));
  check bool_t "dwell_cap < 1 rejected" true
    (raises_invalid (fun () ->
         M.aging_uniform ~dwell_cap:0 base (M.Exponential { mean = 2.0 })));
  check bool_t "law-count mismatch rejected" true
    (raises_invalid (fun () ->
         M.aging base [| M.Exponential { mean = 2.0 } |]))

let test_semi_step_bounds () =
  let h = hex8 () in
  let base = M.random_walk h ~stay:0.5 in
  let cap = 8 in
  let aging =
    M.aging_uniform ~dwell_cap:cap base (M.Pareto { alpha = 1.6; scale = 3.5 })
  in
  let rng = Prob.Rng.create ~seed:42 in
  let n = Cellsim.Hex.cells h in
  let cell = ref 0 and dwell = ref 0 in
  for _ = 1 to 2000 do
    let c', dw' = M.semi_step aging rng ~cell:!cell ~dwell:!dwell in
    check bool_t "cell in range" true (c' >= 0 && c' < n);
    if c' <> !cell then check int_t "dwell resets on move" 0 dw'
    else
      check int_t "dwell grows, clamped below cap" (Int.min (!dwell + 1) (cap - 1))
        dw';
    cell := c';
    dwell := dw'
  done

let test_semi_step_absorbing_cell_stays () =
  let h = Cellsim.Hex.create ~rows:1 ~cols:1 in
  let aging =
    M.aging_uniform (M.random_walk h ~stay:0.3) (M.Exponential { mean = 2.0 })
  in
  let rng = Prob.Rng.create ~seed:5 in
  for dwell = 0 to 5 do
    let c', _ = M.semi_step aging rng ~cell:0 ~dwell in
    check int_t "absorbing cell never leaves" 0 c'
  done

(* With a uniform exponential law of mean 1/(1 − stay), the semi-Markov
   per-tick dynamics coincide with the base chain: age_dist must equal
   diffuse, step for step. *)
let test_exp_matched_aging_is_markov () =
  let h = hex8 () in
  let stay = 0.5 in
  let base = M.random_walk h ~stay in
  let aging =
    M.aging_uniform base (M.Exponential { mean = 1.0 /. (1.0 -. stay) })
  in
  let n = Cellsim.Hex.cells h in
  let rng = Prob.Rng.create ~seed:7 in
  for _ = 1 to 5 do
    let d = random_dist rng n in
    List.iter
      (fun steps ->
        check (float_t 1e-9) "age_dist = diffuse" 0.0
          (tv (M.age_dist aging d ~steps) (M.diffuse base d ~steps)))
      [ 0; 1; 3; 8 ]
  done

let test_age_dist_is_distribution () =
  let h = hex8 () in
  let base = M.random_walk h ~stay:0.5 in
  let n = Cellsim.Hex.cells h in
  let rng = Prob.Rng.create ~seed:13 in
  List.iter
    (fun law ->
      let aging = M.aging_uniform base law in
      let d = random_dist rng n in
      for steps = 0 to 20 do
        let a = M.age_dist aging d ~steps in
        let sum = Array.fold_left ( +. ) 0.0 a in
        check (float_t 1e-9) "sums to 1" 1.0 sum;
        Array.iter (fun x -> check bool_t "non-negative" true (x >= -1e-15)) a
      done;
      check bool_t "steps < 0 raises" true
        (raises_invalid (fun () -> M.age_dist aging d ~steps:(-1))))
    sample_laws

let test_age_to_infinity_reaches_stationary () =
  (* Matched exponential law on a small field: the aged point mass must
     converge to the base chain's stationary distribution. *)
  let h = Cellsim.Hex.create ~rows:4 ~cols:4 in
  let stay = 0.5 in
  let base = M.random_walk h ~stay in
  let aging =
    M.aging_uniform base (M.Exponential { mean = 1.0 /. (1.0 -. stay) })
  in
  let n = Cellsim.Hex.cells h in
  let delta = Array.make n 0.0 in
  delta.(0) <- 1.0;
  let aged = M.age_dist aging delta ~steps:400 in
  check (float_t 1e-6) "converged to stationary" 0.0
    (tv aged (M.stationary base));
  (* Heavy-tailed laws: no closed form claimed, but the evolution must
     still reach a fixed point. *)
  let pareto = M.aging_uniform base (M.Pareto { alpha = 1.6; scale = 3.5 }) in
  check (float_t 1e-6) "pareto fixed point" 0.0
    (tv (M.age_dist pareto delta ~steps:400) (M.age_dist pareto delta ~steps:401))

(* -------------------- profile aging -------------------- *)

let observed_profile h ~count ~seed =
  let n = Cellsim.Hex.cells h in
  let p = P.create ~cells:n ~decay:0.9 ~smoothing:0.05 in
  let rng = Prob.Rng.create ~seed in
  for _ = 1 to count do
    P.observe p (Prob.Rng.int rng n)
  done;
  p

let test_profile_age0_bit_identical () =
  let h = hex8 () in
  let p = observed_profile h ~count:200 ~seed:3 in
  let aging =
    M.aging_uniform (M.random_walk h ~stay:0.5) (M.Exponential { mean = 2.0 })
  in
  check bool_t "aged age-0 bitwise" true
    (P.aged p ~aging ~age:0 = P.distribution p);
  let subset = [| 0; 5; 9; 33 |] in
  check bool_t "aged_over age-0 bitwise" true
    (P.aged_over p ~aging ~age:0 subset = P.distribution_over p subset);
  check bool_t "age > 0 changes the row" true
    (tv (P.aged p ~aging ~age:3) (P.distribution p) > 1e-6);
  check bool_t "negative age rejected" true
    (raises_invalid (fun () -> P.aged p ~aging ~age:(-1)));
  check bool_t "empty subset rejected" true
    (raises_invalid (fun () -> P.aged_over p ~aging ~age:1 [||]))

let test_aged_over_normalizes () =
  let h = hex8 () in
  let p = observed_profile h ~count:100 ~seed:17 in
  let aging =
    M.aging_uniform (M.random_walk h ~stay:0.5)
      (M.Pareto { alpha = 1.6; scale = 3.5 })
  in
  let subset = [| 2; 3; 10; 11; 40 |] in
  List.iter
    (fun age ->
      let r = P.aged_over p ~aging ~age subset in
      check int_t "subset length" (Array.length subset) (Array.length r);
      check (float_t 1e-9) "sums to 1" 1.0 (Array.fold_left ( +. ) 0.0 r))
    [ 0; 1; 5; 12 ]

(* The lazy decay (pending-exponent stamps) against a test-local eager
   reference: bitwise when every observation is followed by a read (lag
   1 is a single multiply), and within 1e-12 after long unread batches
   (the power collapse differs from repeated multiplication only by
   float associativity). *)
let test_lazy_decay_matches_eager () =
  let n = 32 in
  let decay = 0.9 and smoothing = 0.05 in
  let p = P.create ~cells:n ~decay ~smoothing in
  let eager = Array.make n 0.0 in
  let observe c =
    for j = 0 to n - 1 do
      eager.(j) <- eager.(j) *. decay
    done;
    eager.(c) <- eager.(c) +. 1.0;
    P.observe p c
  in
  let eager_dist () =
    Prob.Dist.normalize (Array.map (fun x -> x +. smoothing) eager)
  in
  let rng = Prob.Rng.create ~seed:11 in
  for _ = 1 to 100 do
    observe (Prob.Rng.int rng n);
    check bool_t "bitwise at lag 1" true (P.distribution p = eager_dist ())
  done;
  for _ = 1 to 500 do
    observe (Prob.Rng.int rng n)
  done;
  let lazy_d = P.distribution p and eager_d = eager_dist () in
  Array.iteri
    (fun j x -> check (float_t 1e-12) "batched within 1e-12" eager_d.(j) x)
    lazy_d;
  check int_t "same observation count" 600 (P.observations p)

(* -------------------- staleness radius -------------------- *)

let test_staleness_eps_monotone () =
  let dkw = Prob.Estimate.dkw_eps ~n:100 ~confidence:0.9 in
  check (float_t 0.0) "churn 0 is plain DKW" dkw
    (Prob.Estimate.staleness_eps ~n:100 ~confidence:0.9 ~churn:0.0);
  let prev = ref 0.0 in
  List.iter
    (fun churn ->
      let e = Prob.Estimate.staleness_eps ~n:100 ~confidence:0.9 ~churn in
      check bool_t "monotone in churn" true (e >= !prev);
      check bool_t "bounded by 1" true (e <= 1.0);
      prev := e)
    [ 0.0; 0.1; 0.3; 0.7; 0.95; 1.0 ];
  check (float_t 0.0) "capped at 1" 1.0
    (Prob.Estimate.staleness_eps ~n:100 ~confidence:0.9 ~churn:1.0);
  check bool_t "churn > 1 rejected" true
    (raises_invalid (fun () ->
         Prob.Estimate.staleness_eps ~n:100 ~confidence:0.9 ~churn:1.1));
  check bool_t "churn < 0 rejected" true
    (raises_invalid (fun () ->
         Prob.Estimate.staleness_eps ~n:100 ~confidence:0.9 ~churn:(-0.1)))

let test_inflate_monotone () =
  let open Confcall in
  let ball = Uncertainty.per_row [| 0.05; 0.1 |] in
  let inflated = Uncertainty.inflate ball ~by:[| 0.2; 0.95 |] in
  check (float_t 1e-12) "radius grows by the increment" 0.25
    (Uncertainty.eps_for inflated 0);
  check (float_t 1e-12) "capped at the trivial radius" 1.0
    (Uncertainty.eps_for inflated 1);
  let inst =
    Instance.create ~d:2 [| [| 0.7; 0.2; 0.1 |]; [| 0.1; 0.8; 0.1 |] |]
  in
  let strat = (Solver.solve Solver.Greedy inst).Solver.strategy in
  check bool_t "worst-case EP never shrinks" true
    (Uncertainty.robust_ep inflated inst strat
    >= Uncertainty.robust_ep ball inst strat -. 1e-12);
  check bool_t "negative increment rejected" true
    (raises_invalid (fun () -> Uncertainty.inflate ball ~by:[| -0.1; 0.0 |]));
  check bool_t "length mismatch rejected" true
    (raises_invalid (fun () -> Uncertainty.inflate ball ~by:[| 0.1 |]))

(* -------------------- simulator -------------------- *)

let shorten cfg = { cfg with Sim.duration = 150.0 }

(* With age_cap = 0 the aged scheme must reproduce the age-blind one
   decision for decision within the same run — the frozen-snapshot
   differential of the aged path. *)
let test_sim_age0_differential () =
  let base = Cellsim.Scenario.suburb ~seed:5 () in
  let cfg =
    shorten
      {
        base with
        Sim.schemes = [ Sim.Selective 3; Sim.Selective_aged 3 ];
        reporting = Cellsim.Reporting.Time 6;
        aging = Some { Sim.default_aging with Sim.age_cap = 0 };
      }
  in
  let r = Sim.run cfg in
  let get s = List.find (fun m -> m.Sim.scheme = s) r.Sim.per_scheme in
  let a = get (Sim.Selective 3) and b = get (Sim.Selective_aged 3) in
  check int_t "cells paged equal" a.Sim.cells_paged b.Sim.cells_paged;
  check int_t "rounds equal" a.Sim.rounds_used b.Sim.rounds_used;
  check (float_t 0.0) "nominal EP equal" a.Sim.expected_paging
    b.Sim.expected_paging

let test_residence_scenarios_deterministic () =
  List.iter
    (fun cfg ->
      let run () = Sim.run (shorten cfg) in
      let r1 = run () and r2 = run () in
      check int_t "moves equal" r1.Sim.moves r2.Sim.moves;
      check int_t "polls equal" r1.Sim.polls r2.Sim.polls;
      List.iter2
        (fun a b ->
          check int_t "cells equal" a.Sim.cells_paged b.Sim.cells_paged;
          check (float_t 0.0) "EP equal" a.Sim.expected_paging
            b.Sim.expected_paging)
        r1.Sim.per_scheme r2.Sim.per_scheme)
    [
      Cellsim.Scenario.residence_exp ~seed:9 ();
      Cellsim.Scenario.residence_pareto ~seed:9 ();
    ]

let test_sim_reprofile_polls () =
  let cfg = shorten (Cellsim.Scenario.residence_exp ~seed:5 ()) in
  let with_reprofile =
    {
      cfg with
      Sim.aging =
        Option.map
          (fun a -> { a with Sim.reprofile_age = Some 0 })
          cfg.Sim.aging;
    }
  in
  let r0 = Sim.run cfg and r1 = Sim.run with_reprofile in
  check int_t "no polls without the trigger" 0 r0.Sim.polls;
  check bool_t "polls happen" true (r1.Sim.polls > 0);
  let sel r = List.find (fun m -> m.Sim.scheme = Sim.Selective 3) r.Sim.per_scheme in
  check bool_t "re-profiling pages no more cells" true
    ((sel r1).Sim.cells_paged <= (sel r0).Sim.cells_paged)

let test_sim_aging_validation () =
  let cfg = Cellsim.Scenario.suburb ~seed:1 () in
  check bool_t "aged scheme needs aging" true
    (raises_invalid (fun () ->
         Sim.run { cfg with Sim.schemes = [ Sim.Selective_aged 3 ] }));
  check bool_t "robust scheme needs aging" true
    (raises_invalid (fun () ->
         Sim.run { cfg with Sim.schemes = [ Sim.Selective_robust 3 ] }));
  check bool_t "bad residence rejected" true
    (raises_invalid (fun () ->
         Sim.run
           {
             cfg with
             Sim.aging =
               Some
                 {
                   Sim.default_aging with
                   Sim.residence = M.Exponential { mean = 0.5 };
                 };
           }));
  let commuter = Cellsim.Scenario.commuter_day ~seed:1 () in
  check bool_t "drive_motion excludes mobility_schedule" true
    (raises_invalid (fun () ->
         Sim.run
           {
             commuter with
             Sim.aging =
               Some { Sim.default_aging with Sim.drive_motion = true };
           }))

let () =
  Alcotest.run "aging"
    [
      ( "residence",
        [
          Alcotest.test_case "survival/hazard shapes" `Quick
            test_residence_survival_hazard;
          Alcotest.test_case "pareto mean matching" `Quick
            test_pareto_with_mean;
          Alcotest.test_case "string round-trip" `Quick test_residence_strings;
          Alcotest.test_case "validation" `Quick test_validate_residence;
        ] );
      ( "walk regressions",
        [
          Alcotest.test_case "neighbor-less cells absorb" `Quick
            test_single_cell_walks_absorbing;
          Alcotest.test_case "create names offender" `Quick
            test_create_names_offending_row;
          Alcotest.test_case "diffuse rejects steps < 0" `Quick
            test_diffuse_rejects_negative_steps;
        ] );
      ( "kernel",
        [
          Alcotest.test_case "validation" `Quick test_aging_validation;
          Alcotest.test_case "semi_step bounds" `Quick test_semi_step_bounds;
          Alcotest.test_case "absorbing cell stays" `Quick
            test_semi_step_absorbing_cell_stays;
          Alcotest.test_case "matched exp = Markov" `Quick
            test_exp_matched_aging_is_markov;
          Alcotest.test_case "aged rows are distributions" `Quick
            test_age_dist_is_distribution;
          Alcotest.test_case "age → ∞ reaches stationary" `Slow
            test_age_to_infinity_reaches_stationary;
        ] );
      ( "profile",
        [
          Alcotest.test_case "age 0 bit-identical" `Quick
            test_profile_age0_bit_identical;
          Alcotest.test_case "aged_over normalizes" `Quick
            test_aged_over_normalizes;
          Alcotest.test_case "lazy decay = eager" `Quick
            test_lazy_decay_matches_eager;
        ] );
      ( "staleness",
        [
          Alcotest.test_case "staleness_eps monotone" `Quick
            test_staleness_eps_monotone;
          Alcotest.test_case "inflate monotone + capped" `Quick
            test_inflate_monotone;
        ] );
      ( "simulator",
        [
          Alcotest.test_case "age-0 differential" `Slow
            test_sim_age0_differential;
          Alcotest.test_case "residence scenarios deterministic" `Slow
            test_residence_scenarios_deterministic;
          Alcotest.test_case "re-profiling polls" `Slow
            test_sim_reprofile_polls;
          Alcotest.test_case "validation" `Quick test_sim_aging_validation;
        ] );
    ]
