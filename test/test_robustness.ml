(* Robustness: parsers and validators must never crash with anything but
   Invalid_argument on malformed input, and round-trips must be stable.
   Plus regression pins for a few solved instances so accidental
   behaviour changes are caught. *)

open Confcall

let check = Alcotest.check
let bool_t = Alcotest.bool
let float_t eps = Alcotest.float eps
let qt = QCheck_alcotest.to_alcotest

(* -------------------- parser fuzzing -------------------- *)

let garbage_string =
  QCheck.map
    (fun l -> String.concat "" (List.map (String.make 1) l))
    (QCheck.list_of_size (QCheck.Gen.int_range 0 60)
       (QCheck.oneofl
          [ '0'; '1'; '9'; ' '; '\n'; '.'; '-'; '/'; 'x'; '#'; 'e'; '+' ]))

let prop_instance_of_string_total =
  QCheck.Test.make ~name:"Instance.of_string: Invalid_argument or success"
    ~count:500 garbage_string (fun s ->
      match Instance.of_string s with
      | _ -> true
      | exception Invalid_argument _ -> true
      | exception _ -> false)

let prop_rational_of_string_total =
  QCheck.Test.make ~name:"Rational.of_string: controlled failures" ~count:500
    garbage_string (fun s ->
      match Numeric.Rational.of_string s with
      | _ -> true
      | exception Invalid_argument _ -> true
      | exception Division_by_zero -> true
      | exception _ -> false)

let prop_bigint_of_string_total =
  QCheck.Test.make ~name:"Bigint.of_string: Invalid_argument or success"
    ~count:500 garbage_string (fun s ->
      match Numeric.Bigint.of_string s with
      | _ -> true
      | exception Invalid_argument _ -> true
      | exception _ -> false)

let prop_solver_spec_total =
  QCheck.Test.make ~name:"Solver.spec_of_string never raises" ~count:500
    garbage_string (fun s ->
      match Solver.spec_of_string s with
      | Ok _ | Error _ -> true)

let prop_instance_roundtrip_stable =
  QCheck.Test.make ~name:"instance serialization round-trips" ~count:100
    (QCheck.pair (QCheck.int_range 1 4) (QCheck.int_range 1 12))
    (fun (m, c) ->
      let rng = Prob.Rng.create ~seed:((m * 1000) + c) in
      let d = 1 + Prob.Rng.int rng c in
      let inst = Instance.random_uniform_simplex rng ~m ~c ~d in
      let inst' = Instance.of_string (Instance.to_string inst) in
      let inst'' = Instance.of_string (Instance.to_string inst') in
      (* Fixed point after one round-trip ("%.17g" is lossless). *)
      Instance.to_string inst' = Instance.to_string inst''
      && inst'.Instance.p = inst.Instance.p)

(* -------------------- solver agreement cross-checks -------------------- *)

let prop_all_solvers_agree_on_validity =
  QCheck.Test.make ~name:"every solver returns a valid strategy" ~count:50
    (QCheck.int_range 1 1000000) (fun seed ->
      let rng = Prob.Rng.create ~seed in
      let m = 1 + Prob.Rng.int rng 3 in
      let c = 3 + Prob.Rng.int rng 5 in
      let d = Stdlib.min c (1 + Prob.Rng.int rng 3) in
      let inst = Instance.random_uniform_simplex rng ~m ~c ~d in
      List.for_all
        (fun spec ->
          match Solver.solve spec inst with
          | outcome ->
            Strategy.validate ~c outcome.Solver.strategy = Ok ()
            && outcome.Solver.expected_paging >= 1.0 -. 1e-9
            && outcome.Solver.expected_paging <= float_of_int c +. 1e-9
          | exception Invalid_argument _ -> true)
        (Solver.Class_based :: Solver.basic_specs))

let prop_exact_methods_agree =
  QCheck.Test.make ~name:"exhaustive / bnb / class solver agree" ~count:30
    (QCheck.int_range 1 1000000) (fun seed ->
      let rng = Prob.Rng.create ~seed in
      let m = 1 + Prob.Rng.int rng 2 in
      let c = 4 + Prob.Rng.int rng 3 in
      let inst = Instance.random_uniform_simplex rng ~m ~c ~d:2 in
      let a = (Optimal.exhaustive inst).Optimal.expected_paging in
      let b = (Optimal.branch_and_bound_d2 inst).Optimal.expected_paging in
      let cl = (Class_solver.solve inst).Class_solver.expected_paging in
      abs_float (a -. b) < 1e-9 && abs_float (a -. cl) < 1e-9)

(* -------------------- simulator config validation -------------------- *)

let base_sim_config () =
  let hex = Cellsim.Hex.create ~rows:4 ~cols:4 in
  {
    Cellsim.Sim.hex;
    mobility = Cellsim.Mobility.random_walk hex ~stay:0.4;
    areas = Cellsim.Location_area.grid hex ~block_rows:2 ~block_cols:2;
    users = 8;
    traffic =
      Cellsim.Traffic.create ~rate:0.4 ~group_size:(Cellsim.Traffic.Fixed 2)
        ~users:8;
    schemes = [ Cellsim.Sim.Blanket ];
    reporting = Cellsim.Reporting.Area;
    mobility_schedule = [];
    call_duration = 0.0;
    track_ongoing = true;
    faults = None;
    estimator = Cellsim.Sim.Live;
    aging = None;
    profile_decay = 0.9;
    profile_smoothing = 0.05;
    duration = 20.0;
    seed = 5;
  }

let rejects name config =
  match Cellsim.Sim.run config with
  | _ -> Alcotest.failf "%s: accepted" name
  | exception Invalid_argument _ -> ()

let test_sim_config_validation () =
  let base = base_sim_config () in
  rejects "zero users" { base with Cellsim.Sim.users = 0 };
  rejects "negative users" { base with Cellsim.Sim.users = -3 };
  rejects "no schemes" { base with Cellsim.Sim.schemes = [] };
  rejects "unsorted schedule"
    {
      base with
      Cellsim.Sim.mobility_schedule =
        [ 10.0, base.Cellsim.Sim.mobility; 5.0, base.Cellsim.Sim.mobility ];
    };
  rejects "decay zero" { base with Cellsim.Sim.profile_decay = 0.0 };
  rejects "decay above one" { base with Cellsim.Sim.profile_decay = 1.5 };
  rejects "smoothing zero" { base with Cellsim.Sim.profile_smoothing = 0.0 };
  rejects "negative duration" { base with Cellsim.Sim.duration = -1.0 };
  rejects "nan duration" { base with Cellsim.Sim.duration = Float.nan };
  rejects "bad page_loss"
    {
      base with
      Cellsim.Sim.faults =
        Some { Cellsim.Faults.none with Cellsim.Faults.page_loss = 1.0 };
    };
  rejects "bad detect_q"
    {
      base with
      Cellsim.Sim.faults =
        Some { Cellsim.Faults.none with Cellsim.Faults.detect_q = 0.0 };
    };
  rejects "bad retry cycles"
    {
      base with
      Cellsim.Sim.faults =
        Some
          {
            Cellsim.Faults.none with
            Cellsim.Faults.retry =
              Cellsim.Faults.Repeat { cycles = 0; backoff = 0 };
          };
    }

let prop_sim_fuzzed_knobs_controlled =
  (* Random (possibly invalid) numeric knobs: Sim.run either runs to
     completion or rejects with Invalid_argument — nothing else. *)
  QCheck.Test.make ~name:"Sim.run: Invalid_argument or success" ~count:40
    (QCheck.triple (QCheck.int_range (-2) 6)
       (QCheck.float_range (-0.5) 1.5)
       (QCheck.float_range (-0.5) 1.5))
    (fun (users, decay, fault_p) ->
      let base = base_sim_config () in
      let config =
        {
          base with
          Cellsim.Sim.users;
          traffic =
            Cellsim.Traffic.create ~rate:0.4
              ~group_size:(Cellsim.Traffic.Fixed 2)
              ~users:(Stdlib.max 2 users);
          profile_decay = decay;
          duration = 5.0;
          faults =
            Some
              {
                Cellsim.Faults.none with
                Cellsim.Faults.page_loss = fault_p;
                detect_q = 1.0 -. (fault_p /. 4.0);
              };
        }
      in
      match Cellsim.Sim.run config with
      | _ -> true
      | exception Invalid_argument _ -> true
      | exception _ -> false)

let prop_faults_retry_of_string_total =
  QCheck.Test.make ~name:"Faults.retry_of_string never raises" ~count:500
    garbage_string (fun s ->
      match Cellsim.Faults.retry_of_string s with
      | Ok r ->
        (* Accepted specs round-trip through their printer. *)
        Cellsim.Faults.retry_of_string (Cellsim.Faults.retry_to_string r)
        = Ok r
      | Error _ -> true)

let prop_repeat_strategy_one_cycle_is_strategy =
  (* With cycles = 1 the re-paging schedule is exactly the strategy's
     own rounds — re-paging is a pure extension of clean paging. *)
  QCheck.Test.make ~name:"Miss.repeat_strategy ~cycles:1 = rounds" ~count:100
    (QCheck.int_range 1 1000000) (fun seed ->
      let rng = Prob.Rng.create ~seed in
      let c = 3 + Prob.Rng.int rng 6 in
      let d = 1 + Prob.Rng.int rng c in
      let inst = Instance.random_uniform_simplex rng ~m:1 ~c ~d in
      let strategy = (Greedy.solve inst).Order_dp.strategy in
      let schedule = Miss.repeat_strategy strategy ~cycles:1 in
      schedule = Strategy.groups strategy)

(* -------------------- regression pins -------------------- *)

let test_regression_pins () =
  (* Deterministic instances with EP values pinned at the time the
     solvers were validated against exhaustive search. A change here
     means solver behaviour changed — investigate, don't just re-pin. *)
  let inst1 =
    Instance.create ~d:2 [| [| 0.7; 0.2; 0.1 |]; [| 0.1; 0.2; 0.7 |] |]
  in
  check (float_t 1e-9) "pin 1: greedy" 2.36
    (Greedy.solve inst1).Order_dp.expected_paging;
  check (float_t 1e-9) "pin 1: optimal" 2.36
    (Optimal.exhaustive inst1).Optimal.expected_paging;

  (* Seeded-generator pin: ties the PRNG, the Zipf generator and the DP
     together; pinned from the implementation validated against
     exhaustive search. *)
  let rng = Prob.Rng.create ~seed:424242 in
  let inst2 = Instance.random_zipf rng ~s:1.0 ~m:2 ~c:12 ~d:3 in
  check (float_t 1e-12) "pin 2: greedy on seeded zipf" 7.504556700877087
    (Greedy.solve inst2).Order_dp.expected_paging

let test_uniform_pins () =
  (* Closed-form pins across a range of (c, d). *)
  List.iter
    (fun (c, d, expected) ->
      check (float_t 1e-9)
        (Printf.sprintf "uniform c=%d d=%d" c d)
        expected
        (Single.uniform_ep ~c ~d))
    [
      4, 2, 3.0;
      8, 2, 6.0;
      6, 3, 4.0;
      (* c(d+1)/(2d) for d | c: 12*(4+1)/8 = 7.5 *)
      12, 4, 7.5;
      9, 3, 6.0;
    ]

let test_paper_constant_pins () =
  check (float_t 1e-12) "e/(e-1)" 1.5819767068693265
    Greedy.approximation_factor;
  check (float_t 1e-12) "4/3" (4.0 /. 3.0) Greedy.approximation_factor_m2d2;
  check bool_t "320/317 < 4/3" true
    (Greedy.ratio_lower_bound < Greedy.approximation_factor_m2d2)

let () =
  Alcotest.run "robustness"
    [
      ( "fuzz",
        [
          qt prop_instance_of_string_total;
          qt prop_rational_of_string_total;
          qt prop_bigint_of_string_total;
          qt prop_solver_spec_total;
          qt prop_instance_roundtrip_stable;
        ] );
      ( "cross-checks",
        [ qt prop_all_solvers_agree_on_validity; qt prop_exact_methods_agree ]
      );
      ( "sim-validation",
        [
          Alcotest.test_case "config validation" `Quick
            test_sim_config_validation;
          qt prop_sim_fuzzed_knobs_controlled;
          qt prop_faults_retry_of_string_total;
          qt prop_repeat_strategy_one_cycle_is_strategy;
        ] );
      ( "regression-pins",
        [
          Alcotest.test_case "instance pins" `Quick test_regression_pins;
          Alcotest.test_case "uniform pins" `Quick test_uniform_pins;
          Alcotest.test_case "constants" `Quick test_paper_constant_pins;
        ] );
    ]
