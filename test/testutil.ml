(* Shared helpers for the test executables. The (tests) stanza links
   every module of this directory into each test binary, so keep this
   file dependency-light (Alcotest only). *)

(* GC-regression harness: run [f] a few warmup times (arena binding,
   table building and buffer growth are allowed to allocate), then
   assert that steady-state runs allocate zero minor-heap words. The
   check is exact — a single boxed float is a regression — and uses
   multiple steady runs so a once-per-call allocation cannot hide in
   rounding. *)
let assert_no_minor_alloc ?(warmup = 2) ?(runs = 3) name f =
  for _ = 1 to warmup do
    f ()
  done;
  let before = Gc.minor_words () in
  for _ = 1 to runs do
    f ()
  done;
  let words = Gc.minor_words () -. before in
  if words <> 0.0 then
    Alcotest.failf
      "%s allocated %.0f minor-heap words over %d steady-state runs \
       (expected 0)"
      name words runs
