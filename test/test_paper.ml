(* Tests pinned to quantitative claims made in the paper itself:
   - §1.1 worked example: uniform single device, d = 2 ⇒ EP = 3c/4;
   - §4.3 lower-bound instance: OPT = 317/49, heuristic = 320/49;
   - Theorem 4.8: greedy within e/(e-1) of OPT;
   - Lemma 4.3: within 4/3 for m = d = 2;
   - Lemma 2.1: the EP formula matches Monte Carlo simulation;
   - §3: the NP-hardness reduction identities. *)

module Q = Numeric.Rational

open Confcall

let check = Alcotest.check
let bool_t = Alcotest.bool
let float_t eps = Alcotest.float eps

(* ---------- §1.1: uniform single device, d = 2 gives 3c/4 ---------- *)

let test_uniform_3c_over_4 () =
  List.iter
    (fun c ->
      let inst = Instance.all_uniform ~m:1 ~c ~d:2 in
      let r = Single.solve inst in
      let expected = 3.0 *. float_of_int c /. 4.0 in
      check (float_t 1e-9)
        (Printf.sprintf "c=%d dp" c)
        expected r.Order_dp.expected_paging;
      check (float_t 1e-9)
        (Printf.sprintf "c=%d closed form" c)
        expected
        (Single.uniform_ep ~c ~d:2);
      (* The optimal split is half and half. *)
      check Alcotest.(array int) "sizes" [| c / 2; c / 2 |] r.Order_dp.sizes)
    [ 2; 4; 10; 100; 512 ]

let test_uniform_closed_form_matches_dp () =
  for c = 2 to 24 do
    for d = 1 to Stdlib.min c 6 do
      let inst = Instance.all_uniform ~m:1 ~c ~d in
      let r = Single.solve inst in
      check (float_t 1e-9)
        (Printf.sprintf "c=%d d=%d" c d)
        (Single.uniform_ep ~c ~d)
        r.Order_dp.expected_paging
    done
  done

let test_uniform_d1_pages_everything () =
  let inst = Instance.all_uniform ~m:3 ~c:7 ~d:1 in
  let r = Greedy.solve inst in
  check (float_t 1e-9) "EP = c" 7.0 r.Order_dp.expected_paging;
  check Alcotest.int "one round" 1 (Array.length r.Order_dp.sizes)

(* ---------- §4.3: the 320/317 lower-bound instance ---------- *)

let lb_instance_rows () =
  let seventh = 1.0 /. 7.0 in
  let p1 = [| 2.0 /. 7.0; seventh; seventh; seventh; seventh; seventh; 0.0; 0.0 |] in
  let p2 = [| 0.0; seventh; seventh; seventh; seventh; seventh; seventh; seventh |] in
  p1, p2

let lb_instance_exact () =
  let s = Q.of_ints 1 7 in
  let z = Q.zero in
  let p1 = [| Q.of_ints 2 7; s; s; s; s; s; z; z |] in
  let p2 = [| z; s; s; s; s; s; s; s |] in
  Instance.Exact.create ~d:2 [| p1; p2 |]

let test_lower_bound_instance_optimal () =
  let inst = lb_instance_exact () in
  let strategy, ep = Optimal.exhaustive_exact inst in
  check bool_t "OPT = 317/49" true (Q.equal ep (Q.of_ints 317 49));
  (* The optimal strategy pages cells 2..6 (indices 1..5) first. *)
  let g = Strategy.groups strategy in
  check Alcotest.(array int) "first group" [| 1; 2; 3; 4; 5 |] g.(0)

let test_lower_bound_instance_heuristic () =
  let p1, p2 = lb_instance_rows () in
  let inst = Instance.create ~d:2 [| p1; p2 |] in
  let r = Greedy.solve inst in
  (* Evaluate the heuristic's strategy in exact arithmetic. *)
  let exact = lb_instance_exact () in
  let ep = Strategy.expected_paging_exact exact r.Order_dp.strategy in
  check bool_t "heuristic = 320/49" true (Q.equal ep (Q.of_ints 320 49));
  (* The heuristic pages cells 1..5 (indices 0..4) first. *)
  let g = Strategy.groups r.Order_dp.strategy in
  check Alcotest.(array int) "first group" [| 0; 1; 2; 3; 4 |] g.(0)

let test_ratio_constant_is_320_317 () =
  check (float_t 1e-12) "320/317" (320.0 /. 317.0) Greedy.ratio_lower_bound

(* ---------- Theorem 4.8 / Lemma 4.3 approximation bounds ---------- *)

let random_ratio_check ~m ~c ~d ~bound ~seed ~trials =
  let rng = Prob.Rng.create ~seed in
  for trial = 1 to trials do
    let inst = Instance.random_uniform_simplex rng ~m ~c ~d in
    let greedy = Greedy.solve inst in
    let opt = Optimal.exhaustive inst in
    let ratio =
      greedy.Order_dp.expected_paging /. opt.Optimal.expected_paging
    in
    if ratio > bound +. 1e-9 then
      Alcotest.failf "trial %d: ratio %.6f exceeds bound %.6f (m=%d c=%d d=%d)"
        trial ratio bound m c d;
    if greedy.Order_dp.expected_paging < opt.Optimal.expected_paging -. 1e-9
    then
      Alcotest.failf "trial %d: greedy %.6f beats exhaustive %.6f" trial
        greedy.Order_dp.expected_paging opt.Optimal.expected_paging
  done

let test_ratio_m2_d2_within_4_3 () =
  random_ratio_check ~m:2 ~c:8 ~d:2 ~bound:(4.0 /. 3.0) ~seed:11 ~trials:60

let test_ratio_general_within_e () =
  random_ratio_check ~m:3 ~c:7 ~d:3 ~bound:Greedy.approximation_factor ~seed:12
    ~trials:30;
  random_ratio_check ~m:2 ~c:9 ~d:3 ~bound:Greedy.approximation_factor ~seed:13
    ~trials:30;
  random_ratio_check ~m:4 ~c:6 ~d:2 ~bound:Greedy.approximation_factor ~seed:14
    ~trials:30

let test_single_device_greedy_is_optimal () =
  (* m = 1 is in P: the heuristic must match exhaustive search exactly. *)
  let rng = Prob.Rng.create ~seed:21 in
  for _ = 1 to 40 do
    let inst = Instance.random_uniform_simplex rng ~m:1 ~c:8 ~d:3 in
    let greedy = Greedy.solve inst in
    let opt = Optimal.exhaustive inst in
    check (float_t 1e-9) "m=1 optimal" opt.Optimal.expected_paging
      greedy.Order_dp.expected_paging
  done

(* ---------- Lemma 2.1: EP formula vs Monte Carlo ---------- *)

let test_ep_formula_vs_monte_carlo () =
  let rng = Prob.Rng.create ~seed:31 in
  for _ = 1 to 5 do
    let inst = Instance.random_zipf rng ~s:1.0 ~m:2 ~c:10 ~d:3 in
    let r = Greedy.solve inst in
    let mc =
      Strategy.monte_carlo_ep inst r.Order_dp.strategy rng ~trials:60_000
    in
    let halfwidth = 4.0 *. Prob.Stats.ci95_halfwidth mc in
    if abs_float (mc.Prob.Stats.mean -. r.Order_dp.expected_paging) > halfwidth
    then
      Alcotest.failf "Lemma 2.1 mismatch: formula %.4f, MC %.4f ± %.4f"
        r.Order_dp.expected_paging mc.Prob.Stats.mean halfwidth
  done

let test_ep_exact_matches_float () =
  let exact = lb_instance_exact () in
  let float_inst = Instance.Exact.to_float exact in
  let strategy = Strategy.create [| [| 1; 2; 3; 4; 5 |]; [| 0; 6; 7 |] |] in
  let qe = Strategy.expected_paging_exact exact strategy in
  let fe = Strategy.expected_paging float_inst strategy in
  check (float_t 1e-9) "exact vs float" (Q.to_float qe) fe

(* ---------- Lemma 2.1 remark: longer strategies never hurt ---------- *)

let test_longer_strategies_weakly_better () =
  let rng = Prob.Rng.create ~seed:41 in
  for _ = 1 to 10 do
    let base = Instance.random_uniform_simplex rng ~m:2 ~c:10 ~d:1 in
    let eps = ref [] in
    for d = 1 to 6 do
      let inst = Instance.with_d base d in
      eps := (Greedy.solve inst).Order_dp.expected_paging :: !eps
    done;
    let arr = Array.of_list (List.rev !eps) in
    check bool_t "EP non-increasing in d" true
      (Numeric.Convex.is_nonincreasing ~eps:1e-9 arr)
  done

(* ---------- Theorem 4.8 existence argument (Lemma 4.6) ---------- *)

let test_lemma46_same_sizes_family () =
  (* For any strategy S with sizes s, the weight-order strategy T with
     the same sizes satisfies EP_T <= e/(e-1) * EP_S. *)
  let rng = Prob.Rng.create ~seed:51 in
  for _ = 1 to 200 do
    let m = 1 + Prob.Rng.int rng 3 in
    let c = 4 + Prob.Rng.int rng 5 in
    let d = 2 + Prob.Rng.int rng 2 in
    let d = Stdlib.min d c in
    let inst = Instance.random_uniform_simplex rng ~m ~c ~d in
    (* Random strategy: random order, random cut sizes. *)
    let order = Array.init c (fun j -> j) in
    Prob.Rng.shuffle rng order;
    let sizes =
      let cuts = Array.init (d - 1) (fun _ -> 1 + Prob.Rng.int rng (c - 1)) in
      Array.sort compare cuts;
      let bounds = Array.concat [ [| 0 |]; cuts; [| c |] ] in
      let sizes = Array.init d (fun i -> bounds.(i + 1) - bounds.(i)) in
      if Array.exists (fun s -> s = 0) sizes then [| c |] else sizes
    in
    let s = Strategy.of_sizes ~order ~sizes in
    let t = Strategy.of_sizes ~order:(Greedy.order inst) ~sizes in
    let ep_s = Strategy.expected_paging inst s in
    let ep_t = Strategy.expected_paging inst t in
    if ep_t > (Greedy.approximation_factor *. ep_s) +. 1e-9 then
      Alcotest.failf "Lemma 4.6 violated: EP_T %.5f > %.5f * EP_S %.5f" ep_t
        Greedy.approximation_factor ep_s
  done

let qt = QCheck_alcotest.to_alcotest

(* Property: greedy EP always between the lower bound and c. *)
let prop_greedy_between_bounds =
  QCheck.Test.make ~name:"LB <= greedy EP <= c" ~count:100
    (QCheck.pair (QCheck.int_range 1 4) (QCheck.int_range 2 12))
    (fun (m, c) ->
      let rng = Prob.Rng.create ~seed:(71 + (m * 1000) + c) in
      let d = Stdlib.min c 3 in
      let inst = Instance.random_uniform_simplex rng ~m ~c ~d in
      let g = (Greedy.solve inst).Order_dp.expected_paging in
      let lb = Bounds.lower_bound inst in
      lb <= g +. 1e-9 && g <= float_of_int c +. 1e-9)

(* Property: exhaustive OPT is at least the DP lower bound. *)
let prop_lb_below_opt =
  QCheck.Test.make ~name:"lower bound admissible vs exhaustive" ~count:40
    (QCheck.pair (QCheck.int_range 1 3) (QCheck.int_range 3 7))
    (fun (m, c) ->
      let rng = Prob.Rng.create ~seed:(91 + (m * 1000) + c) in
      let d = 2 in
      let inst = Instance.random_uniform_simplex rng ~m ~c ~d in
      let opt = (Optimal.exhaustive inst).Optimal.expected_paging in
      Bounds.lower_bound inst <= opt +. 1e-9)

let () =
  Alcotest.run "paper"
    [
      ( "uniform-example",
        [
          Alcotest.test_case "3c/4 (d=2)" `Quick test_uniform_3c_over_4;
          Alcotest.test_case "closed form vs DP" `Quick
            test_uniform_closed_form_matches_dp;
          Alcotest.test_case "d=1 pages all" `Quick
            test_uniform_d1_pages_everything;
        ] );
      ( "lower-bound-instance",
        [
          Alcotest.test_case "OPT = 317/49" `Quick
            test_lower_bound_instance_optimal;
          Alcotest.test_case "heuristic = 320/49" `Quick
            test_lower_bound_instance_heuristic;
          Alcotest.test_case "constant 320/317" `Quick
            test_ratio_constant_is_320_317;
        ] );
      ( "approximation",
        [
          Alcotest.test_case "4/3 for m=2 d=2" `Slow test_ratio_m2_d2_within_4_3;
          Alcotest.test_case "e/(e-1) general" `Slow
            test_ratio_general_within_e;
          Alcotest.test_case "m=1 exactly optimal" `Slow
            test_single_device_greedy_is_optimal;
          Alcotest.test_case "Lemma 4.6 family" `Slow
            test_lemma46_same_sizes_family;
          qt prop_greedy_between_bounds;
          qt prop_lb_below_opt;
        ] );
      ( "expected-paging",
        [
          Alcotest.test_case "formula vs Monte Carlo" `Slow
            test_ep_formula_vs_monte_carlo;
          Alcotest.test_case "exact vs float" `Quick test_ep_exact_matches_float;
          Alcotest.test_case "longer never hurts" `Quick
            test_longer_strategies_weakly_better;
        ] );
    ]
