(* Differential and determinism harness for the multicore runtime.

   Parallelism is only admissible here because it is invisible in the
   results: a raced fallback chain must choose the stage the sequential
   loop chooses, a sharded sweep must write the bytes the sequential
   sweep writes, and replica reduction must not care what order the
   replicas finished in. This suite pins each of those claims over
   hundreds of seeded instances, plus the pool mechanics (deterministic
   ordering, error propagation, no leaked domains) and the cooperative
   cancellation of raced losers. *)

open Confcall
module Q = Numeric.Rational

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int

(* ---------------- pool mechanics ---------------- *)

let test_map_order () =
  Exec.Pool.with_pool ~domains:4 (fun pool ->
      let input = Array.init 100 Fun.id in
      let out = Exec.Pool.map pool (fun i -> i * i) input in
      check bool_t "results in input order" true
        (out = Array.map (fun i -> i * i) input);
      check bool_t "empty input" true (Exec.Pool.map pool succ [||] = [||]);
      check bool_t "map_list order" true
        (Exec.Pool.map_list pool succ [ 1; 2; 3 ] = [ 2; 3; 4 ]))

let test_size_one_sequential () =
  let before = Exec.Pool.active_domains () in
  let pool = Exec.Pool.create ~domains:1 () in
  check int_t "no domains spawned" before (Exec.Pool.active_domains ());
  let out = Exec.Pool.map pool (fun i -> 2 * i) (Array.init 10 Fun.id) in
  check bool_t "sequential map" true (out = Array.init 10 (fun i -> 2 * i));
  Exec.Pool.join pool;
  check int_t "still no domains" before (Exec.Pool.active_domains ())

let test_error_lowest_index () =
  Exec.Pool.with_pool ~domains:4 (fun pool ->
      let f i =
        if i = 3 || i = 7 then failwith (string_of_int i) else i
      in
      match Exec.Pool.map pool f (Array.init 10 Fun.id) with
      | _ -> Alcotest.fail "expected Failure"
      | exception Failure msg ->
        check bool_t "lowest-indexed failure surfaces" true (msg = "3"))

let test_nested_map_rejected () =
  Exec.Pool.with_pool ~domains:2 (fun pool ->
      match
        Exec.Pool.map pool
          (fun i ->
            if i = 0 then
              Array.length (Exec.Pool.map pool Fun.id [| 1; 2 |])
            else i)
          [| 0; 1 |]
      with
      | _ -> Alcotest.fail "expected Invalid_argument"
      | exception Invalid_argument _ -> ())

let test_join_idempotent_no_leak () =
  let before = Exec.Pool.active_domains () in
  let pool = Exec.Pool.create ~domains:4 () in
  check int_t "workers spawned" (before + 3) (Exec.Pool.active_domains ());
  ignore (Exec.Pool.map pool succ (Array.init 32 Fun.id));
  Exec.Pool.join pool;
  Exec.Pool.join pool;
  check int_t "all joined" before (Exec.Pool.active_domains ());
  (match Exec.Pool.map pool succ [| 1 |] with
   | _ -> Alcotest.fail "map on joined pool must raise"
   | exception Invalid_argument _ -> ());
  (* with_pool joins even when the body escapes with an exception *)
  (match
     Exec.Pool.with_pool ~domains:3 (fun _ -> raise Exit)
   with
   | () -> Alcotest.fail "expected Exit"
   | exception Exit -> ());
  check int_t "with_pool joined on exception" before
    (Exec.Pool.active_domains ())

(* Regression: a task that raises must not corrupt the global
   active-domains accounting. Repeated failing rounds through many
   pools would previously drift the counter, masking real leaks. *)
let test_raising_tasks_no_leak () =
  let before = Exec.Pool.active_domains () in
  for round = 1 to 5 do
    (match
       Exec.Pool.with_pool ~domains:4 (fun pool ->
           Exec.Pool.map pool
             (fun i -> if i mod 2 = round mod 2 then failwith "boom" else i)
             (Array.init 16 Fun.id))
     with
     | _ -> Alcotest.fail "expected Failure"
     | exception Failure _ -> ());
    check int_t
      (Printf.sprintf "round %d: accounting intact after task raise" round)
      before
      (Exec.Pool.active_domains ())
  done;
  (* a clean pool after the failing rounds still spawns and joins the
     full complement — the counter did not drift negative *)
  Exec.Pool.with_pool ~domains:4 (fun pool ->
      check int_t "fresh pool spawns after failures" (before + 3)
        (Exec.Pool.active_domains ());
      ignore (Exec.Pool.map pool succ (Array.init 8 Fun.id)));
  check int_t "fresh pool joined" before (Exec.Pool.active_domains ())

let test_default_domains_env () =
  let with_env v f =
    (match v with
     | Some v -> Unix.putenv Exec.Pool.env_var v
     | None -> Unix.putenv Exec.Pool.env_var "");
    Fun.protect ~finally:(fun () -> Unix.putenv Exec.Pool.env_var "") f
  in
  with_env (Some "4") (fun () ->
      check int_t "CONFCALL_DOMAINS=4" 4 (Exec.Pool.default_domains ()));
  with_env (Some " 8 ") (fun () ->
      check int_t "whitespace tolerated" 8 (Exec.Pool.default_domains ()));
  with_env (Some "100000") (fun () ->
      check int_t "clamped" 256 (Exec.Pool.default_domains ()));
  with_env (Some "0") (fun () ->
      check int_t "non-positive -> 1" 1 (Exec.Pool.default_domains ()));
  with_env (Some "banana") (fun () ->
      check int_t "garbage -> 1" 1 (Exec.Pool.default_domains ()));
  with_env None (fun () ->
      check int_t "unset -> 1" 1 (Exec.Pool.default_domains ()))

(* ---------------- cancellation ---------------- *)

(* The losing side of a race must stop within one poll interval of its
   token firing. One task spins incrementing a counter and polling a
   token whose probe reads an atomic flag (poll interval [every]); the
   other observes the counter, flips the flag, and remembers what it
   saw. The spinner must stop soon after — not run to its cap. *)
let test_cancelled_within_poll_interval () =
  let every = 32 in
  let cap = 200_000_000 in
  let progress = Atomic.make 0 in
  let lose = Atomic.make false in
  let seen_at_fire = Atomic.make (-1) in
  let spinner () =
    let tok = Cancel.of_probe ~every (fun () -> Atomic.get lose) in
    (try
       while Atomic.get progress < cap do
         Cancel.check tok;
         Atomic.incr progress
       done
     with Cancel.Cancelled -> ());
    Atomic.get progress
  in
  let canceller () =
    let spins = ref 0 in
    while Atomic.get progress < 10_000 && !spins < max_int - 1 do
      incr spins
    done;
    Atomic.set seen_at_fire (Atomic.get progress);
    Atomic.set lose true;
    0
  in
  let final =
    Exec.Pool.with_pool ~domains:2 (fun pool ->
        (Exec.Pool.map pool (fun f -> f ()) [| spinner; canceller |]).(0))
  in
  let seen = Atomic.get seen_at_fire in
  check bool_t "canceller observed progress first" true (seen >= 10_000);
  check bool_t
    (Printf.sprintf "stopped well before the cap (final %d)" final)
    true (final < cap);
  (* One poll interval is [every] iterations; allow generous scheduling
     slack between the canceller's read and its store. *)
  check bool_t
    (Printf.sprintf "stopped within ~one poll interval (%d after %d)" final
       seen)
    true
    (final - seen <= 1000 * every)

(* End-to-end: in a raced first-success chain, a success at index i
   cancels every later stage; the expensive loser either completed
   before the flag fired or returns Degraded (anytime best-so-far) /
   Failed Timeout — and the winner is still the earlier stage. *)
let test_raced_loser_cancelled () =
  let rng = Prob.Rng.create ~seed:77 in
  let inst = Instance.random_uniform_simplex rng ~m:3 ~c:120 ~d:4 in
  Exec.Pool.with_pool ~domains:2 (fun pool ->
      let report =
        Runner.run ~chain:Solver.[ Greedy; Local_search ] ~pool inst
      in
      (match report.Runner.winner with
       | Some (Solver.Greedy, _) -> ()
       | _ -> Alcotest.fail "greedy must win the race");
      List.iter
        (fun (s : Runner.stage_report) ->
          check bool_t "stage attributed as raced" true s.Runner.raced;
          if s.Runner.spec = Solver.Local_search then
            match s.Runner.status with
            | Runner.Completed | Runner.Degraded
            | Runner.Failed Runner.Timeout ->
              ()
            | st ->
              Alcotest.failf "unexpected loser status: %s"
                (Runner.stage_status_to_string st))
        report.Runner.stages)

(* ---------------- runner differential ---------------- *)

let chains =
  [
    Runner.default_chain;
    Solver.[ Local_search; Greedy; Page_all ];
    Solver.[ Exhaustive; Greedy ];
    Solver.[ Branch_and_bound; Local_search ];
    Solver.[ Class_based; Bandwidth_limited 4; Page_all ];
  ]

let winner_key (r : Runner.run_report) =
  match r.Runner.winner with
  | None -> None
  | Some (spec, o) ->
    Some (Solver.spec_to_string spec, o.Solver.expected_paging)

let winner_strategy (r : Runner.run_report) =
  Option.map (fun (_, o) -> o.Solver.strategy) r.Runner.winner

let assert_same_run ~name seq par =
  check bool_t
    (Printf.sprintf "%s: same winner stage and EP" name)
    true
    (winner_key seq = winner_key par);
  (match (winner_strategy seq, winner_strategy par) with
   | Some a, Some b ->
     check bool_t (Printf.sprintf "%s: same strategy" name) true
       (Strategy.equal a b)
   | None, None -> ()
   | _ -> Alcotest.failf "%s: winner presence differs" name)

(* 160 random float instances: the raced chain (4 domains) must pick
   the same stage, strategy and EP as the sequential loop, and the
   choice must be invariant in the number of domains (2 and 3 spot
   checks). Chains are unbudgeted, so stage outcomes are deterministic
   (guarded exact methods fail as Inapplicable deterministically). *)
let test_differential_float () =
  let rng = Prob.Rng.create ~seed:31337 in
  Exec.Pool.with_pool ~domains:4 (fun pool4 ->
      Exec.Pool.with_pool ~domains:2 (fun pool2 ->
          Exec.Pool.with_pool ~domains:3 (fun pool3 ->
              for case = 1 to 160 do
                let m = 1 + Prob.Rng.int rng 4 in
                let c = 2 + Prob.Rng.int rng 28 in
                let d = 1 + Prob.Rng.int rng (min 6 c) in
                let inst = Instance.random_uniform_simplex rng ~m ~c ~d in
                let objective =
                  match Prob.Rng.int rng 3 with
                  | 0 -> Objective.Find_all
                  | 1 -> Objective.Find_any
                  | _ -> Objective.Find_at_least (1 + Prob.Rng.int rng m)
                in
                let chain =
                  List.nth chains (Prob.Rng.int rng (List.length chains))
                in
                let name = Printf.sprintf "float case %d (m=%d c=%d d=%d)"
                    case m c d in
                let seq = Runner.run ~objective ~chain inst in
                let par = Runner.run ~objective ~chain ~pool:pool4 inst in
                assert_same_run ~name seq par;
                if case mod 8 = 0 then begin
                  assert_same_run ~name:(name ^ " [domains=2]") seq
                    (Runner.run ~objective ~chain ~pool:pool2 inst);
                  assert_same_run ~name:(name ^ " [domains=3]") seq
                    (Runner.run ~objective ~chain ~pool:pool3 inst)
                end
              done)))

(* Dyadic instances: probabilities are multiples of 1/1024, so the
   float matrix is exact and the rational oracle can certify that both
   winners have *identical* expected paging as exact rationals — not
   merely equal up to float printing. 60 instances. *)
let dyadic_exact rng ~m ~c ~d =
  let denom = 1024 in
  let rows =
    Array.init m (fun _ ->
        let w = Array.make c 1 in
        for _ = 1 to denom - c do
          let j = Prob.Rng.int rng c in
          w.(j) <- w.(j) + 1
        done;
        Array.map (fun x -> Q.of_ints x denom) w)
  in
  Instance.Exact.create ~d rows

let test_differential_rational_oracle () =
  let rng = Prob.Rng.create ~seed:271828 in
  Exec.Pool.with_pool ~domains:4 (fun pool ->
      for case = 1 to 60 do
        let m = 1 + Prob.Rng.int rng 3 in
        let c = 2 + Prob.Rng.int rng 20 in
        let d = 1 + Prob.Rng.int rng (min 5 c) in
        let exact = dyadic_exact rng ~m ~c ~d in
        let inst = Instance.Exact.to_float exact in
        let chain =
          List.nth chains (Prob.Rng.int rng (List.length chains))
        in
        let name = Printf.sprintf "dyadic case %d (m=%d c=%d d=%d)" case m c d in
        let seq = Runner.run ~chain inst in
        let par = Runner.run ~chain ~pool inst in
        assert_same_run ~name seq par;
        match (winner_strategy seq, winner_strategy par) with
        | Some a, Some b ->
          let ep_a = Strategy.expected_paging_exact exact a in
          let ep_b = Strategy.expected_paging_exact exact b in
          check bool_t
            (Printf.sprintf "%s: rational oracle EP equal" name)
            true (Q.equal ep_a ep_b)
        | _ -> Alcotest.failf "%s: missing winner" name
      done)

(* Uncertainty re-ranking: every stage runs in both modes; the raced
   run must agree on the winner, its worst-case EP and certification. *)
let test_differential_uncertainty () =
  let rng = Prob.Rng.create ~seed:4242 in
  Exec.Pool.with_pool ~domains:4 (fun pool ->
      for case = 1 to 40 do
        let m = 1 + Prob.Rng.int rng 3 in
        let c = 2 + Prob.Rng.int rng 20 in
        let d = 1 + Prob.Rng.int rng (min 4 c) in
        let inst = Instance.random_uniform_simplex rng ~m ~c ~d in
        let u = Uncertainty.uniform (0.001 *. float_of_int (1 + case mod 20)) in
        let chain = Solver.[ Local_search; Greedy; Page_all ] in
        let name = Printf.sprintf "uncertainty case %d" case in
        let seq = Runner.run ~chain ~uncertainty:u inst in
        let par = Runner.run ~chain ~uncertainty:u ~pool inst in
        assert_same_run ~name seq par;
        let robust_ep (r : Runner.run_report) =
          Option.map
            (fun (rr : Runner.robust_report) -> rr.Runner.winner_robust_ep)
            r.Runner.robust
        in
        check bool_t
          (Printf.sprintf "%s: same certified worst-case EP" name)
          true
          (robust_ep seq = robust_ep par)
      done)

(* ---------------- sharded sweep differential ---------------- *)

let tmp name = Filename.temp_file ("confcall_parallel_" ^ name) ".journal"

let read_file path = In_channel.with_open_bin path In_channel.input_all

let sweep_items n =
  List.init n (fun k ->
      let seed = 500 + k in
      {
        Sweep.id = Printf.sprintf "par/c12/seed%d" seed;
        compute =
          (fun () ->
            let rng = Prob.Rng.create ~seed in
            let inst = Instance.random_uniform_simplex rng ~m:2 ~c:12 ~d:3 in
            let o = Solver.solve Solver.Greedy inst in
            Printf.sprintf "%.9f" o.Solver.expected_paging);
      })

let run_sweep ?pool path items =
  let journal = Journal.load_or_create path in
  Fun.protect
    ~finally:(fun () -> Journal.close journal)
    (fun () -> Sweep.run ?pool ~journal items)

let test_sweep_bytes_identical () =
  Exec.Pool.with_pool ~domains:4 (fun pool ->
      let items = sweep_items 30 in
      let seq_path = tmp "seq" and par_path = tmp "par" in
      Sys.remove seq_path;
      Sys.remove par_path;
      let seq = run_sweep seq_path items in
      let par = run_sweep ~pool par_path items in
      check bool_t "outcomes identical" true
        (List.map (fun o -> (o.Sweep.id, o.Sweep.payload)) seq
        = List.map (fun o -> (o.Sweep.id, o.Sweep.payload)) par);
      check bool_t "all parallel items ran" true
        (List.for_all (fun o -> o.Sweep.status = `Ran) par);
      check bool_t "journal bytes identical" true
        (read_file seq_path = read_file par_path);
      check bool_t "no shard files left" true
        (not (Sys.file_exists (Sweep.shard_path par_path 0)));
      Sys.remove seq_path;
      Sys.remove par_path)

let test_sweep_resume_bytes_identical () =
  Exec.Pool.with_pool ~domains:3 (fun pool ->
      let items = sweep_items 24 in
      let firstn n = List.filteri (fun i _ -> i < n) items in
      let resumed = tmp "resumed" and control = tmp "control" in
      Sys.remove resumed;
      Sys.remove control;
      (* Interrupted sequential prefix, finished by the sharded run. *)
      ignore (run_sweep resumed (firstn 9));
      let finish = run_sweep ~pool resumed items in
      ignore (run_sweep control items);
      check bool_t "resumed journal byte-identical to uninterrupted" true
        (read_file resumed = read_file control);
      check int_t "prefix replayed" 9
        (List.length
           (List.filter (fun o -> o.Sweep.status = `Replayed) finish));
      Sys.remove resumed;
      Sys.remove control)

let test_sweep_crash_leftovers () =
  Exec.Pool.with_pool ~domains:4 (fun pool ->
      let items = sweep_items 12 in
      let path = tmp "crash" in
      Sys.remove path;
      (* A crashed run left a shard journal holding two finished items
         with sentinel payloads; the next run must reuse them instead of
         recomputing, and still merge in item order. *)
      let cached =
        List.filteri (fun i _ -> i = 5 || i = 6) items
        |> List.map (fun (it : Sweep.item) ->
               (it.Sweep.id, "sentinel-" ^ it.Sweep.id))
      in
      let shard = Journal.load_or_create (Sweep.shard_path path 1) in
      List.iter
        (fun (id, payload) -> Journal.record shard ~id ~payload)
        cached;
      Journal.close shard;
      let outcomes = run_sweep ~pool path items in
      List.iter
        (fun o ->
          match List.assoc_opt o.Sweep.id cached with
          | Some sentinel ->
            check bool_t (o.Sweep.id ^ ": recovered payload") true
              (o.Sweep.payload = sentinel && o.Sweep.status = `Recovered)
          | None ->
            check bool_t (o.Sweep.id ^ ": ran") true (o.Sweep.status = `Ran))
        outcomes;
      (* Merged order is still item order. *)
      let journal = Journal.load_or_create path in
      let ids = List.map fst (Journal.entries journal) in
      Journal.close journal;
      check bool_t "merge preserves item order" true
        (ids = List.map (fun (it : Sweep.item) -> it.Sweep.id) items);
      check bool_t "leftover shard deleted" true
        (not (Sys.file_exists (Sweep.shard_path path 1)));
      Sys.remove path)

let test_sweep_duplicate_ids () =
  Exec.Pool.with_pool ~domains:4 (fun pool ->
      let items = sweep_items 6 in
      let doubled = items @ items in
      let path = tmp "dup" in
      Sys.remove path;
      let outcomes = run_sweep ~pool path doubled in
      let ran, replayed =
        List.partition (fun o -> o.Sweep.status = `Ran) outcomes
      in
      check int_t "each id computed once" 6 (List.length ran);
      check int_t "duplicates replayed" 6 (List.length replayed);
      Sys.remove path)

(* ---------------- replica reduction ---------------- *)

let small_sim_config () =
  { (Cellsim.Sim.default_config ()) with Cellsim.Sim.duration = 60.0 }

let test_replicate_order_independent () =
  let cfg = small_sim_config () in
  let replicas = Cellsim.Replicate.run ~replicas:5 cfg in
  let base = Cellsim.Replicate.reduce replicas in
  check bool_t "reversed order, same summary" true
    (Cellsim.Replicate.reduce (List.rev replicas) = base);
  let rng = Prob.Rng.create ~seed:55 in
  let arr = Array.of_list replicas in
  Prob.Rng.shuffle rng arr;
  check bool_t "shuffled order, same summary" true
    (Cellsim.Replicate.reduce (Array.to_list arr) = base)

let test_replicate_parallel_equals_sequential () =
  let cfg = small_sim_config () in
  let seq = Cellsim.Replicate.run_summary ~replicas:4 cfg in
  let par =
    Exec.Pool.with_pool ~domains:4 (fun pool ->
        Cellsim.Replicate.run_summary ~pool ~replicas:4 cfg)
  in
  check bool_t "parallel summary bit-identical" true (seq = par)

(* ---------------- registration ---------------- *)

let () =
  Alcotest.run "parallel"
    [
      ( "pool",
        [
          Alcotest.test_case "map preserves order" `Quick test_map_order;
          Alcotest.test_case "size 1 is sequential" `Quick
            test_size_one_sequential;
          Alcotest.test_case "lowest-index error wins" `Quick
            test_error_lowest_index;
          Alcotest.test_case "nested map rejected" `Quick
            test_nested_map_rejected;
          Alcotest.test_case "join idempotent, no leaks" `Quick
            test_join_idempotent_no_leak;
          Alcotest.test_case "raising tasks keep accounting" `Quick
            test_raising_tasks_no_leak;
          Alcotest.test_case "CONFCALL_DOMAINS parsing" `Quick
            test_default_domains_env;
        ] );
      ( "cancellation",
        [
          Alcotest.test_case "cancelled within one poll interval" `Quick
            test_cancelled_within_poll_interval;
          Alcotest.test_case "raced loser cancelled, winner unchanged" `Quick
            test_raced_loser_cancelled;
        ] );
      ( "runner-differential",
        [
          Alcotest.test_case "160 float instances, domains 2/3/4" `Quick
            test_differential_float;
          Alcotest.test_case "60 dyadic instances, rational oracle" `Quick
            test_differential_rational_oracle;
          Alcotest.test_case "40 uncertainty re-rankings" `Quick
            test_differential_uncertainty;
        ] );
      ( "sweep-differential",
        [
          Alcotest.test_case "journal bytes identical" `Quick
            test_sweep_bytes_identical;
          Alcotest.test_case "resume byte-identical" `Quick
            test_sweep_resume_bytes_identical;
          Alcotest.test_case "crash leftovers recovered" `Quick
            test_sweep_crash_leftovers;
          Alcotest.test_case "duplicate ids replay" `Quick
            test_sweep_duplicate_ids;
        ] );
      ( "replicate",
        [
          Alcotest.test_case "reduction order-independent" `Quick
            test_replicate_order_independent;
          Alcotest.test_case "parallel equals sequential" `Quick
            test_replicate_parallel_equals_sequential;
        ] );
    ]
