(* Tests for the §3 NP-hardness reduction pipeline. The centerpiece:
   a Quasipartition1 instance is positive iff the reduced Conference Call
   instance (m = 2, d = 2) has optimal expected paging exactly equal to
   the closed-form bound LB of Lemma 3.2 — checked in exact rational
   arithmetic against exhaustive search. *)

module Q = Numeric.Rational
module B = Numeric.Bigint

open Confcall

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int
let qt = QCheck_alcotest.to_alcotest

let q = Q.of_ints

(* -------------------- brute-force deciders -------------------- *)

let test_partition_brute_positive () =
  (* {1,2,3,4}: {1,4} vs {2,3}. *)
  match Hardness.partition_brute [| 1; 2; 3; 4 |] with
  | Some p ->
    check int_t "half the elements" 2 (List.length p);
    let s = List.fold_left (fun acc i -> acc + [| 1; 2; 3; 4 |].(i)) 0 p in
    check int_t "half the sum" 5 s
  | None -> Alcotest.fail "expected a partition"

let test_partition_brute_negative () =
  check bool_t "odd total" true (Hardness.partition_brute [| 1; 2; 4; 8 |] = None);
  check bool_t "unbalanced" true
    (Hardness.partition_brute [| 1; 1; 1; 100 |] = None);
  check bool_t "odd count" true (Hardness.partition_brute [| 1; 2; 3 |] = None)

let test_qp1_brute_positive () =
  (* c = 6, need |I| = 4 summing to half. sizes 1,1,1,1,2,2 total 8:
     I = {1,1,2} has only 3 elements... choose sizes where a 4-subset
     hits half: 3,1,1,1,1,1 (total 8, half 4): {3,1} no (2 elts)...
     {1,1,1,1} = 4 yes. *)
  let sizes = Array.map Q.of_int [| 3; 1; 1; 1; 1; 1 |] in
  match Hardness.quasipartition1_brute sizes with
  | Some i ->
    check int_t "cardinality" 4 (List.length i);
    let s = Q.sum (List.map (fun k -> sizes.(k)) i) in
    check bool_t "sum" true (Q.equal s (Q.of_int 4))
  | None -> Alcotest.fail "expected a quasipartition"

let test_qp1_brute_negative () =
  let sizes = Array.map Q.of_int [| 100; 1; 1; 1; 1; 1 |] in
  check bool_t "no 4-subset hits half" true
    (Hardness.quasipartition1_brute sizes = None);
  check bool_t "c not divisible by 3" true
    (Hardness.quasipartition1_brute (Array.map Q.of_int [| 1; 1 |]) = None)

(* -------------------- Lemma 3.2 reduction -------------------- *)

let test_qp1_instance_well_formed () =
  let sizes = Array.map Q.of_int [| 3; 1; 1; 1; 1; 1 |] in
  let inst = Hardness.qp1_to_conference sizes in
  check int_t "m" 2 inst.Instance.Exact.m;
  check int_t "c" 6 inst.Instance.Exact.c;
  check int_t "d" 2 inst.Instance.Exact.d;
  (* Rows sum to 1 exactly (checked by Exact.create, re-verify). *)
  Array.iter
    (fun row ->
      check bool_t "row sums to one" true
        (Q.equal (Q.sum (Array.to_list row)) Q.one))
    inst.Instance.Exact.p

let test_qp1_reduction_formulas () =
  (* Spot-check p and q against the paper's formulas for c = 6. *)
  let sizes = Array.map Q.of_int [| 3; 1; 1; 1; 1; 1 |] in
  let inst = Hardness.qp1_to_conference sizes in
  let total = Q.of_int 8 in
  let c = 6 in
  let p_expected j =
    Q.(div
         (add (sub one (of_ints 3 12)) (div sizes.(j) total))
         (sub (of_int c) (of_ints 1 2)))
  in
  let q_expected j =
    let pred_c = c - 1 in
    Q.(div (sub one (div sizes.(j) total)) (of_int pred_c))
  in
  for j = 0 to c - 1 do
    check bool_t "p formula" true
      (Q.equal inst.Instance.Exact.p.(0).(j) (p_expected j));
    check bool_t "q formula" true
      (Q.equal inst.Instance.Exact.p.(1).(j) (q_expected j))
  done

let test_lemma32_equivalence_positive () =
  (* Positive QP1 instances: optimal EP must equal LB exactly. *)
  List.iter
    (fun sizes ->
      let sizes = Array.map Q.of_int sizes in
      let brute = Hardness.quasipartition1_brute sizes <> None in
      check bool_t "brute positive" true brute;
      check bool_t "via conference" true
        (Hardness.qp1_answer_via_conference sizes))
    [ [| 3; 1; 1; 1; 1; 1 |]; [| 2; 2; 1; 1; 1; 1 |]; [| 5; 1; 2; 2; 1; 1 |] ]

let test_lemma32_equivalence_negative () =
  List.iter
    (fun sizes ->
      let sizes = Array.map Q.of_int sizes in
      let brute = Hardness.quasipartition1_brute sizes <> None in
      check bool_t "brute negative" false brute;
      check bool_t "via conference negative" false
        (Hardness.qp1_answer_via_conference sizes))
    [ [| 7; 1; 1; 1; 1; 1 |]; [| 4; 3; 1; 1; 1; 1 |] ]

let prop_lemma32_equivalence_random =
  QCheck.Test.make ~name:"Lemma 3.2: QP1 <=> optimal EP = LB" ~count:25
    (QCheck.list_of_size (QCheck.Gen.return 6) (QCheck.int_range 0 6))
    (fun sizes_l ->
      let sizes = Array.of_list (List.map Q.of_int sizes_l) in
      let total = Q.sum (Array.to_list sizes) in
      QCheck.assume (Q.sign total > 0);
      QCheck.assume
        (not (Array.exists (fun s -> Q.compare s total >= 0) sizes));
      let brute = Hardness.quasipartition1_brute sizes <> None in
      let via = Hardness.qp1_answer_via_conference sizes in
      brute = via)

let test_lb_below_c () =
  List.iter
    (fun c ->
      let lb = Hardness.qp1_lower_bound ~c in
      check bool_t "LB < c" true (Q.compare lb (Q.of_int c) < 0);
      check bool_t "LB > 0" true (Q.sign lb > 0))
    [ 3; 6; 9; 12 ]

(* -------------------- Lemma 3.7: Partition -> QP1 -------------------- *)

let test_partition_to_qp1_shape () =
  let sizes = [| 1; 2; 3; 4 |] in
  let qp1 = Hardness.partition_to_qp1 sizes in
  let n = Array.length qp1 in
  check int_t "length divisible by 3" 0 (n mod 3);
  check bool_t "total is 1" true (Q.equal (Q.sum (Array.to_list qp1)) Q.one);
  check bool_t "non-negative" true
    (not (Array.exists (fun s -> Q.sign s < 0) qp1))

let test_partition_to_qp1_equivalence_brute () =
  (* Verify the reduction with both sides decided by brute force. *)
  let cases_positive = [ [| 1; 2; 3; 4 |]; [| 2; 2; 2; 2 |]; [| 1; 1; 2; 2 |] ] in
  let cases_negative = [ [| 1; 1; 1; 100 |]; [| 1; 2; 4; 8 |] ] in
  List.iter
    (fun sizes ->
      check bool_t "positive side" true
        (Hardness.partition_brute sizes <> None);
      check bool_t "qp1 positive" true
        (Hardness.quasipartition1_brute (Hardness.partition_to_qp1 sizes)
        <> None))
    cases_positive;
  List.iter
    (fun sizes ->
      check bool_t "negative side" true (Hardness.partition_brute sizes = None);
      check bool_t "qp1 negative" true
        (Hardness.quasipartition1_brute (Hardness.partition_to_qp1 sizes)
        = None))
    cases_negative

let prop_partition_to_qp1_equivalence =
  QCheck.Test.make ~name:"Partition <=> reduced QP1 (brute force)" ~count:30
    (QCheck.list_of_size (QCheck.Gen.return 4) (QCheck.int_range 1 12))
    (fun sizes_l ->
      let sizes = Array.of_list sizes_l in
      let direct = Hardness.partition_brute sizes <> None in
      let reduced =
        Hardness.quasipartition1_brute (Hardness.partition_to_qp1 sizes)
        <> None
      in
      direct = reduced)

(* The full chain Partition -> QP1 -> Conference Call uses c = 3g cells,
   too big for exhaustive search beyond g = 4; test g = 4 end to end. *)
let test_full_chain () =
  check bool_t "positive through the chain" true
    (Hardness.partition_answer_via_chain [| 1; 2; 3; 4 |]);
  check bool_t "negative through the chain" false
    (Hardness.partition_answer_via_chain [| 1; 1; 1; 100 |])

(* -------------------- §3.2 Multipartition parameters ------------------ *)

let test_multipartition_params_m2_d2 () =
  (* m = 2, d = 2: α₁ = 2/3, so r = (2/3, 1/3), x = (1/3, 2/3), M = 3.
     (b₁ = α₁·c = 2c/3.) *)
  let p = Hardness.multipartition_params ~m:2 ~d:2 in
  check bool_t "alpha1" true (Q.equal p.Hardness.alphas.(0) (q 2 3));
  check bool_t "r1" true (Q.equal p.Hardness.rs.(0) (q 2 3));
  check bool_t "r2" true (Q.equal p.Hardness.rs.(1) (q 1 3));
  check bool_t "x1" true (Q.equal p.Hardness.xs.(0) (q 1 3));
  check bool_t "x2" true (Q.equal p.Hardness.xs.(1) (q 2 3));
  check int_t "M" 3 (B.to_int_exn p.Hardness.modulus)

let test_multipartition_params_consistency () =
  List.iter
    (fun (m, d) ->
      let p = Hardness.multipartition_params ~m ~d in
      check int_t "alphas" (d - 1) (Array.length p.Hardness.alphas);
      check bool_t "rs sum to 1" true
        (Q.equal (Q.sum (Array.to_list p.Hardness.rs)) Q.one);
      check bool_t "xs sum to 1" true
        (Q.equal (Q.sum (Array.to_list p.Hardness.xs)) Q.one);
      Array.iter
        (fun r -> check bool_t "r positive" true (Q.sign r > 0))
        p.Hardness.rs;
      (* Alphas strictly increase and stay below 1 (Lemma 3.4). *)
      Array.iteri
        (fun i a ->
          check bool_t "alpha < 1" true (Q.compare a Q.one < 0);
          if i > 0 then
            check bool_t "alphas increase" true
              (Q.compare a p.Hardness.alphas.(i - 1) > 0))
        p.Hardness.alphas;
      (* M·r_j are integers: the whole point of M. *)
      Array.iter
        (fun r ->
          let prod = Q.mul (Q.of_bigint p.Hardness.modulus) r in
          check bool_t "M*r integral" true (B.equal (Q.den prod) B.one))
        p.Hardness.rs)
    [ 2, 2; 2, 3; 3, 2; 3, 3; 2, 4 ]

let test_multipartition_matches_float_lemma34 () =
  (* Exact rational parameters agree with the float recurrences. *)
  List.iter
    (fun (m, d) ->
      let p = Hardness.multipartition_params ~m ~d in
      let fl = Numeric.Lemma_bounds.optimal_group_fractions ~m ~d in
      Array.iteri
        (fun j r ->
          if abs_float (Q.to_float r -. fl.(j)) > 1e-9 then
            Alcotest.failf "r_%d mismatch: %s vs %.12f" j (Q.to_string r)
              fl.(j))
        p.Hardness.rs)
    [ 2, 2; 2, 3; 3, 3; 4, 2 ]

let test_qp2_specializes_to_qp1 () =
  (* m = d = 2 gives M = 3, r = (2/3, 1/3), x = (1/3, 2/3): the QP2
     construction must match the QP1 one structurally. *)
  let sizes = [| 1; 2; 3; 4 |] in
  let qp2 = Hardness.partition_to_qp2 ~params:Hardness.qp1_params sizes in
  let qp1 = Hardness.partition_to_qp1 sizes in
  check int_t "same length" (Array.length qp1) (Array.length qp2.Hardness.q_sizes);
  check bool_t "same cardinality" true
    (qp2.Hardness.q_cardinality = 2 * Array.length qp1 / 3);
  check bool_t "target 1/2" true
    (Q.equal qp2.Hardness.q_target_fraction (q 1 2));
  check bool_t "total 1" true
    (Q.equal (Q.sum (Array.to_list qp2.Hardness.q_sizes)) Q.one)

let test_qp2_equivalence_brute () =
  (* Partition <=> reduced QP2, decided by brute force on both sides,
     across several (m, d) parameterizations. *)
  let cases_positive = [ [| 1; 2; 3; 4 |]; [| 2; 2; 2; 2 |]; [| 1; 1; 2; 2 |] ] in
  let cases_negative = [ [| 1; 1; 1; 100 |]; [| 1; 2; 4; 8 |] ] in
  List.iter
    (fun (m, d) ->
      List.iter
        (fun sizes ->
          let expected = Hardness.partition_brute sizes <> None in
          let qp2 =
            Hardness.partition_to_qp2 ~params:(Hardness.qp2_params ~m ~d) sizes
          in
          let got = Hardness.quasipartition2_brute qp2 in
          if got <> expected then
            Alcotest.failf "m=%d d=%d: QP2 %b but Partition %b" m d got
              expected)
        (cases_positive @ cases_negative))
    [ 2, 2; 3, 2; 2, 3 ]

let prop_qp2_equivalence_random =
  QCheck.Test.make ~name:"Partition <=> reduced QP2 (m=3, d=2)" ~count:20
    (QCheck.list_of_size (QCheck.Gen.return 4) (QCheck.int_range 1 10))
    (fun sizes_l ->
      let sizes = Array.of_list sizes_l in
      let direct = Hardness.partition_brute sizes <> None in
      let qp2 =
        Hardness.partition_to_qp2 ~params:(Hardness.qp2_params ~m:3 ~d:2) sizes
      in
      Hardness.quasipartition2_brute qp2 = direct)

let test_multipartition_rejects_bad_args () =
  (match Hardness.multipartition_params ~m:1 ~d:2 with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "m=1 accepted");
  match Hardness.multipartition_params ~m:2 ~d:1 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "d=1 accepted"

let () =
  Alcotest.run "hardness"
    [
      ( "brute-force",
        [
          Alcotest.test_case "partition positive" `Quick
            test_partition_brute_positive;
          Alcotest.test_case "partition negative" `Quick
            test_partition_brute_negative;
          Alcotest.test_case "qp1 positive" `Quick test_qp1_brute_positive;
          Alcotest.test_case "qp1 negative" `Quick test_qp1_brute_negative;
        ] );
      ( "lemma-3.2",
        [
          Alcotest.test_case "instance well formed" `Quick
            test_qp1_instance_well_formed;
          Alcotest.test_case "reduction formulas" `Quick
            test_qp1_reduction_formulas;
          Alcotest.test_case "equivalence positive" `Slow
            test_lemma32_equivalence_positive;
          Alcotest.test_case "equivalence negative" `Slow
            test_lemma32_equivalence_negative;
          Alcotest.test_case "LB sane" `Quick test_lb_below_c;
          qt prop_lemma32_equivalence_random;
        ] );
      ( "lemma-3.7",
        [
          Alcotest.test_case "shape" `Quick test_partition_to_qp1_shape;
          Alcotest.test_case "equivalence brute" `Quick
            test_partition_to_qp1_equivalence_brute;
          Alcotest.test_case "full chain" `Slow test_full_chain;
          qt prop_partition_to_qp1_equivalence;
        ] );
      ( "multipartition",
        [
          Alcotest.test_case "m=2 d=2 parameters" `Quick
            test_multipartition_params_m2_d2;
          Alcotest.test_case "consistency" `Quick
            test_multipartition_params_consistency;
          Alcotest.test_case "matches float lemma 3.4" `Quick
            test_multipartition_matches_float_lemma34;
          Alcotest.test_case "bad args" `Quick
            test_multipartition_rejects_bad_args;
          Alcotest.test_case "qp2 specializes to qp1" `Quick
            test_qp2_specializes_to_qp1;
          Alcotest.test_case "qp2 equivalence (m,d) sweep" `Slow
            test_qp2_equivalence_brute;
          qt prop_qp2_equivalence_random;
        ] );
    ]
