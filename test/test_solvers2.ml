(* Tests for the second wave of solvers: local search, the exact
   adaptive-within-order DP, the class-based exact solver, weighted
   paging costs, and the coarse DP for large instances. *)

open Confcall

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int
let float_t eps = Alcotest.float eps
let qt = QCheck_alcotest.to_alcotest

(* -------------------- Local search -------------------- *)

let test_hill_climb_never_worse_than_greedy () =
  let rng = Prob.Rng.create ~seed:201 in
  for _ = 1 to 20 do
    let inst = Instance.random_uniform_simplex rng ~m:2 ~c:8 ~d:3 in
    let greedy = (Greedy.solve inst).Order_dp.expected_paging in
    let ls = Local_search.hill_climb inst in
    check bool_t "descends" true
      (ls.Local_search.expected_paging <= greedy +. 1e-9);
    (* The reported EP must match Lemma 2.1 on the returned strategy. *)
    check (float_t 1e-9) "consistent"
      (Strategy.expected_paging inst ls.Local_search.strategy)
      ls.Local_search.expected_paging
  done

let test_hill_climb_escapes_weight_order () =
  (* On the §4.3 instance the heuristic is stuck at 320/49; one swap
     (cell 1 <-> cell 6) reaches the optimum 317/49. *)
  let seventh = 1.0 /. 7.0 in
  let p1 = [| 2.0 /. 7.0; seventh; seventh; seventh; seventh; seventh; 0.0; 0.0 |] in
  let p2 = [| 0.0; seventh; seventh; seventh; seventh; seventh; seventh; seventh |] in
  let inst = Instance.create ~d:2 [| p1; p2 |] in
  let ls = Local_search.hill_climb inst in
  check (float_t 1e-9) "reaches 317/49" (317.0 /. 49.0)
    ls.Local_search.expected_paging

let test_hill_climb_matches_optimal_often () =
  let rng = Prob.Rng.create ~seed:202 in
  let hits = ref 0 in
  let trials = 15 in
  for _ = 1 to trials do
    let inst = Instance.random_uniform_simplex rng ~m:2 ~c:7 ~d:2 in
    let opt = (Optimal.exhaustive inst).Optimal.expected_paging in
    let ls = Local_search.hill_climb inst in
    check bool_t "never beats optimal" true
      (ls.Local_search.expected_paging >= opt -. 1e-9);
    if ls.Local_search.expected_paging <= opt +. 1e-9 then incr hits
  done;
  check bool_t "usually optimal on small instances" true (!hits >= trials - 2)

let test_anneal_bounds_and_determinism () =
  let rng1 = Prob.Rng.create ~seed:203 in
  let rng2 = Prob.Rng.create ~seed:203 in
  let inst = Instance.random_zipf (Prob.Rng.create ~seed:204) ~s:1.0 ~m:3 ~c:10 ~d:3 in
  let a = Local_search.anneal inst rng1 ~steps:2000 ~t0:0.5 ~cooling:0.999 in
  let b = Local_search.anneal inst rng2 ~steps:2000 ~t0:0.5 ~cooling:0.999 in
  check (float_t 0.0) "deterministic given seed" a.Local_search.expected_paging
    b.Local_search.expected_paging;
  let greedy = (Greedy.solve inst).Order_dp.expected_paging in
  check bool_t "not worse than greedy" true
    (a.Local_search.expected_paging <= greedy +. 1e-9)

let test_anneal_rejects_bad_params () =
  let inst = Instance.all_uniform ~m:1 ~c:4 ~d:2 in
  let rng = Prob.Rng.create ~seed:1 in
  List.iter
    (fun (steps, t0, cooling) ->
      match Local_search.anneal inst rng ~steps ~t0 ~cooling with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail "bad params accepted")
    [ -1, 1.0, 0.9; 10, 0.0, 0.9; 10, 1.0, 1.5 ]

let test_local_search_solve_defaults () =
  let rng = Prob.Rng.create ~seed:205 in
  let inst = Instance.random_zipf rng ~s:1.2 ~m:2 ~c:12 ~d:3 in
  let r = Local_search.solve inst rng in
  check bool_t "valid strategy" true
    (Strategy.validate ~c:12 r.Local_search.strategy = Ok ());
  check bool_t "iterations counted" true (r.Local_search.iterations > 0)

(* -------------------- Adaptive DP -------------------- *)

let test_adaptive_dp_single_device_equals_oblivious () =
  (* m = 1: no feedback before success, so the adaptive-within-order
     optimum equals the oblivious within-order optimum. *)
  let rng = Prob.Rng.create ~seed:211 in
  for _ = 1 to 10 do
    let inst = Instance.random_uniform_simplex rng ~m:1 ~c:8 ~d:3 in
    let obl = (Greedy.solve inst).Order_dp.expected_paging in
    let ada = Adaptive_dp.value inst in
    check (float_t 1e-9) "m=1" obl ada
  done

let test_adaptive_dp_bounds () =
  (* The adaptive-within-order family contains every fixed cut of the
     same order, so its optimum never exceeds the oblivious DP value.
     (The greedy-adaptive policy of {!Adaptive} is NOT comparable: it
     re-sorts the conditional instance each round, leaving the fixed
     order family.) *)
  let rng = Prob.Rng.create ~seed:212 in
  for _ = 1 to 12 do
    let inst = Instance.random_uniform_simplex rng ~m:2 ~c:7 ~d:3 in
    let oblivious = (Greedy.solve inst).Order_dp.expected_paging in
    let ada_opt = Adaptive_dp.value inst in
    check bool_t "ada_opt <= oblivious" true (ada_opt <= oblivious +. 1e-9)
  done

let test_adaptive_dp_policy_realizes_value () =
  (* Running the DP's policy through the independent outcome-enumeration
     evaluator must reproduce the DP's value exactly. *)
  let rng = Prob.Rng.create ~seed:213 in
  for _ = 1 to 8 do
    let inst = Instance.random_uniform_simplex rng ~m:2 ~c:6 ~d:3 in
    let r = Adaptive_dp.solve inst in
    let realized = Adaptive.evaluate_exact inst r.Adaptive_dp.policy in
    check (float_t 1e-9) "policy = value" r.Adaptive_dp.expected_paging realized
  done

let test_adaptive_dp_objectives () =
  let rng = Prob.Rng.create ~seed:214 in
  let inst = Instance.random_uniform_simplex rng ~m:3 ~c:6 ~d:2 in
  let any = Adaptive_dp.value ~objective:Objective.Find_any inst in
  let all = Adaptive_dp.value inst in
  check bool_t "find-any cheaper" true (any <= all +. 1e-9)

let test_unrestricted_dominates_everything () =
  (* unrestricted adaptive OPT <= within-order adaptive OPT and
     <= the oblivious exhaustive OPT. *)
  let rng = Prob.Rng.create ~seed:215 in
  for _ = 1 to 10 do
    let inst = Instance.random_uniform_simplex rng ~m:2 ~c:6 ~d:3 in
    let free = Adaptive_dp.unrestricted inst in
    let within = Adaptive_dp.value inst in
    let oblivious = (Optimal.exhaustive inst).Optimal.expected_paging in
    check bool_t "free <= within-order" true (free <= within +. 1e-9);
    check bool_t "free <= oblivious OPT" true (free <= oblivious +. 1e-9)
  done

let test_unrestricted_m1_equals_oblivious () =
  (* No useful feedback with one device: the unrestricted adaptive
     optimum collapses to the oblivious optimum. *)
  let rng = Prob.Rng.create ~seed:216 in
  for _ = 1 to 8 do
    let inst = Instance.random_uniform_simplex rng ~m:1 ~c:7 ~d:3 in
    let free = Adaptive_dp.unrestricted inst in
    let oblivious = (Optimal.exhaustive inst).Optimal.expected_paging in
    check (float_t 1e-9) "m=1 equality" oblivious free
  done

let test_unrestricted_guard () =
  let inst = Instance.all_uniform ~m:2 ~c:20 ~d:2 in
  match Adaptive_dp.unrestricted inst with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected 3^c guard"

let test_adaptive_dp_guard () =
  let inst = Instance.all_uniform ~m:12 ~c:40 ~d:3 in
  match Adaptive_dp.value inst with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected state-space guard"

(* -------------------- Class solver -------------------- *)

let test_classes_detection () =
  let inst =
    Instance.create ~d:2
      [| [| 0.25; 0.25; 0.25; 0.25 |]; [| 0.4; 0.1; 0.4; 0.1 |] |]
  in
  let cls = Class_solver.classes inst in
  check int_t "two classes" 2 (Array.length cls);
  check Alcotest.(array int) "class 0" [| 0; 2 |] cls.(0);
  check Alcotest.(array int) "class 1" [| 1; 3 |] cls.(1)

let test_class_solver_uniform_matches_exhaustive () =
  for c = 4 to 8 do
    for m = 1 to 3 do
      let inst = Instance.all_uniform ~m ~c ~d:2 in
      let a = (Class_solver.solve inst).Class_solver.expected_paging in
      let b = (Optimal.exhaustive inst).Optimal.expected_paging in
      check (float_t 1e-9) (Printf.sprintf "c=%d m=%d" c m) b a
    done
  done

let test_class_solver_matches_exhaustive_random_classes () =
  (* Build instances with duplicated columns; the class solver must
     find the same optimum as plain exhaustive search. *)
  let rng = Prob.Rng.create ~seed:221 in
  for _ = 1 to 10 do
    let m = 1 + Prob.Rng.int rng 2 in
    (* Three distinct column types spread over 9 cells. *)
    let base = Array.init m (fun _ -> Prob.Dist.uniform_simplex rng 3) in
    let p =
      Array.init m (fun i ->
          Prob.Dist.normalize (Array.init 9 (fun j -> base.(i).(j mod 3))))
    in
    let inst = Instance.create ~d:2 p in
    let a = (Class_solver.solve inst).Class_solver.expected_paging in
    let b = (Optimal.exhaustive inst).Optimal.expected_paging in
    check (float_t 1e-9) "class = exhaustive" b a
  done

let test_class_solver_on_433_instance () =
  (* The §4.3 instance has 3 cell classes; the class solver recovers the
     true optimum 317/49 quickly. *)
  let seventh = 1.0 /. 7.0 in
  let p1 = [| 2.0 /. 7.0; seventh; seventh; seventh; seventh; seventh; 0.0; 0.0 |] in
  let p2 = [| 0.0; seventh; seventh; seventh; seventh; seventh; seventh; seventh |] in
  let inst = Instance.create ~d:2 [| p1; p2 |] in
  let r = Class_solver.solve inst in
  check int_t "three classes" 3 r.Class_solver.classes;
  check (float_t 1e-9) "optimum" (317.0 /. 49.0) r.Class_solver.expected_paging

let test_class_solver_scales_past_exhaustive () =
  (* 60 uniform cells, d = 3: exhaustive is 3^60 — impossible; the class
     solver enumerates C(62,2) compositions. Cross-check with the
     greedy DP, which is optimal within the (here unique) order family
     and on uniform instances equals the true optimum. *)
  let inst = Instance.all_uniform ~m:2 ~c:60 ~d:3 in
  let a = Class_solver.solve inst in
  let g = (Greedy.solve inst).Order_dp.expected_paging in
  check int_t "one class" 1 a.Class_solver.classes;
  check (float_t 1e-9) "matches DP optimum" g a.Class_solver.expected_paging

let test_class_approximate_on_near_uniform () =
  (* Perturbed-uniform instance: thousands of distinct columns, but a
     coarse grid collapses them to one class; the snapped solution is
     near-optimal on the original. *)
  let rng = Prob.Rng.create ~seed:223 in
  let base = Instance.all_uniform ~m:2 ~c:40 ~d:3 in
  let inst =
    Instance.create ~d:3
      (Array.map (fun row -> Prob.Dist.perturb rng ~eps:0.02 row) base.Instance.p)
  in
  let approx = Class_solver.approximate inst ~grid:40 in
  let greedy = (Greedy.solve inst).Order_dp.expected_paging in
  check bool_t "few classes after snapping" true (approx.Class_solver.classes <= 3);
  check bool_t "close to greedy" true
    (approx.Class_solver.expected_paging <= greedy +. 0.5)

let test_class_approximate_grid_refines () =
  (* Finer grids cannot systematically hurt: at a very fine grid the
     snapped instance equals the original (probabilities land on the
     grid) and the result matches the exact class solve. *)
  let inst =
    Instance.create ~d:2 [| [| 0.5; 0.25; 0.25 |]; [| 0.25; 0.5; 0.25 |] |]
  in
  let exact = (Class_solver.solve inst).Class_solver.expected_paging in
  let fine = (Class_solver.approximate inst ~grid:4).Class_solver.expected_paging in
  check (float_t 1e-9) "grid 4 recovers exact" exact fine

let test_class_approximate_reports_true_ep () =
  let rng = Prob.Rng.create ~seed:224 in
  let base = Instance.all_uniform ~m:2 ~c:12 ~d:2 in
  let inst =
    Instance.create ~d:2
      (Array.map (fun row -> Prob.Dist.perturb rng ~eps:0.05 row) base.Instance.p)
  in
  let r = Class_solver.approximate inst ~grid:10 in
  check (float_t 1e-9) "EP evaluated on the original instance"
    (Strategy.expected_paging inst r.Class_solver.strategy)
    r.Class_solver.expected_paging

let test_class_solver_guard () =
  let rng = Prob.Rng.create ~seed:222 in
  (* All columns distinct: classes = c, candidates = d^... huge. *)
  let inst = Instance.random_uniform_simplex rng ~m:2 ~c:40 ~d:4 in
  match Class_solver.solve ~max_candidates:1000 inst with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected candidate guard"

(* -------------------- Weighted costs -------------------- *)

let test_expected_cost_unit_equals_paging () =
  let rng = Prob.Rng.create ~seed:231 in
  for _ = 1 to 10 do
    let inst = Instance.random_uniform_simplex rng ~m:2 ~c:8 ~d:3 in
    let s = (Greedy.solve inst).Order_dp.strategy in
    check (float_t 1e-9) "unit costs"
      (Strategy.expected_paging inst s)
      (Strategy.expected_cost inst ~cell_cost:(Array.make 8 1.0) s)
  done

let test_weighted_dp_reports_consistent_cost () =
  let rng = Prob.Rng.create ~seed:232 in
  for _ = 1 to 10 do
    let inst = Instance.random_zipf rng ~s:1.0 ~m:2 ~c:10 ~d:3 in
    let cell_cost = Array.init 10 (fun j -> 1.0 +. (0.3 *. float_of_int j)) in
    let order = Instance.weight_order inst in
    let r = Order_dp.solve ~cell_cost inst ~order in
    check (float_t 1e-9) "DP value = strategy cost"
      (Strategy.expected_cost inst ~cell_cost r.Order_dp.strategy)
      r.Order_dp.expected_paging
  done

let test_weighted_dp_optimal_within_order () =
  (* Verify against enumeration of all cuts under weighted cost. *)
  let rng = Prob.Rng.create ~seed:233 in
  for _ = 1 to 8 do
    let c = 7 in
    let inst = Instance.random_uniform_simplex rng ~m:2 ~c ~d:3 in
    let cell_cost = Array.init c (fun j -> 0.5 +. float_of_int ((j * 7) mod 5)) in
    let order = Instance.weight_order inst in
    let dp = Order_dp.solve ~cell_cost inst ~order in
    let best = ref infinity in
    let rec go parts remaining slots =
      if slots = 1 then begin
        if remaining >= 1 then begin
          let sizes = Array.of_list (List.rev (remaining :: parts)) in
          let s = Strategy.of_sizes ~order ~sizes in
          let v = Strategy.expected_cost inst ~cell_cost s in
          if v < !best then best := v
        end
      end
      else
        for v = 1 to remaining - slots + 1 do
          go (v :: parts) (remaining - v) (slots - 1)
        done
    in
    go [] c 3;
    check (float_t 1e-9) "weighted DP optimal" !best dp.Order_dp.expected_paging
  done

let test_weighted_dp_prefers_cheap_cells () =
  (* Two cells with equal probability but very different costs: the
     expensive one should be deferred to the last round. *)
  let inst =
    Instance.create ~d:2 [| [| 0.45; 0.45; 0.05; 0.05 |] |]
  in
  let cell_cost = [| 1.0; 50.0; 1.0; 1.0 |] in
  let order = [| 0; 1; 2; 3 |] in
  let r = Order_dp.solve ~cell_cost inst ~order in
  let first = (Strategy.groups r.Order_dp.strategy).(0) in
  check bool_t "expensive cell not in round 1" true
    (not (Array.mem 1 first))

(* -------------------- Coarse DP -------------------- *)

let test_coarse_matches_full_when_block_1 () =
  let rng = Prob.Rng.create ~seed:241 in
  for _ = 1 to 8 do
    let inst = Instance.random_zipf rng ~s:1.0 ~m:2 ~c:12 ~d:3 in
    let order = Instance.weight_order inst in
    let full = Order_dp.solve inst ~order in
    let coarse = Order_dp.solve_coarse ~block:1 inst ~order in
    check (float_t 1e-9) "block=1 is exact" full.Order_dp.expected_paging
      coarse.Order_dp.expected_paging
  done

let test_coarse_close_to_full () =
  let rng = Prob.Rng.create ~seed:242 in
  let inst = Instance.random_zipf rng ~s:1.1 ~m:2 ~c:200 ~d:4 in
  let order = Instance.weight_order inst in
  let full = Order_dp.solve inst ~order in
  let coarse = Order_dp.solve_coarse ~block:8 inst ~order in
  check bool_t "coarse >= full" true
    (coarse.Order_dp.expected_paging >= full.Order_dp.expected_paging -. 1e-9);
  check bool_t "within 3%" true
    (coarse.Order_dp.expected_paging
    <= full.Order_dp.expected_paging *. 1.03)

let test_coarse_reported_ep_is_real () =
  let rng = Prob.Rng.create ~seed:243 in
  let inst = Instance.random_zipf rng ~s:1.0 ~m:3 ~c:100 ~d:5 in
  let order = Instance.weight_order inst in
  let coarse = Order_dp.solve_coarse ~block:10 inst ~order in
  check (float_t 1e-9) "EP matches Lemma 2.1"
    (Strategy.expected_paging inst coarse.Order_dp.strategy)
    coarse.Order_dp.expected_paging

let test_coarse_huge_instance_runs () =
  (* 20k cells: the full DP would need ~d*c^2 = 1.6e9 steps; coarse with
     block 256 runs in milliseconds. *)
  let c = 20_000 in
  let rng = Prob.Rng.create ~seed:244 in
  let inst = Instance.random_zipf rng ~s:1.05 ~m:2 ~c ~d:4 in
  let order = Instance.weight_order inst in
  let t0 = Sys.time () in
  let r = Order_dp.solve_coarse ~block:256 inst ~order in
  let elapsed = Sys.time () -. t0 in
  check bool_t "fast" true (elapsed < 5.0);
  check bool_t "meaningful saving" true
    (r.Order_dp.expected_paging < 0.9 *. float_of_int c)

let prop_coarse_never_beats_full =
  QCheck.Test.make ~name:"coarse DP >= full DP (same order)" ~count:30
    (QCheck.int_range 1 1000000) (fun seed ->
      let rng = Prob.Rng.create ~seed in
      let c = 20 + Prob.Rng.int rng 40 in
      let d = 2 + Prob.Rng.int rng 3 in
      let inst = Instance.random_uniform_simplex rng ~m:2 ~c ~d in
      let order = Instance.weight_order inst in
      let full = (Order_dp.solve inst ~order).Order_dp.expected_paging in
      let coarse =
        (Order_dp.solve_coarse ~block:4 inst ~order).Order_dp.expected_paging
      in
      coarse >= full -. 1e-9)

let () =
  Alcotest.run "solvers2"
    [
      ( "local-search",
        [
          Alcotest.test_case "never worse than greedy" `Quick
            test_hill_climb_never_worse_than_greedy;
          Alcotest.test_case "escapes weight order (317/49)" `Quick
            test_hill_climb_escapes_weight_order;
          Alcotest.test_case "usually optimal small" `Slow
            test_hill_climb_matches_optimal_often;
          Alcotest.test_case "annealing deterministic" `Quick
            test_anneal_bounds_and_determinism;
          Alcotest.test_case "bad params" `Quick test_anneal_rejects_bad_params;
          Alcotest.test_case "solve defaults" `Quick
            test_local_search_solve_defaults;
        ] );
      ( "adaptive-dp",
        [
          Alcotest.test_case "m=1 equals oblivious" `Quick
            test_adaptive_dp_single_device_equals_oblivious;
          Alcotest.test_case "ordering of optima" `Slow test_adaptive_dp_bounds;
          Alcotest.test_case "policy realizes value" `Slow
            test_adaptive_dp_policy_realizes_value;
          Alcotest.test_case "objectives" `Quick test_adaptive_dp_objectives;
          Alcotest.test_case "state guard" `Quick test_adaptive_dp_guard;
          Alcotest.test_case "unrestricted dominates" `Slow
            test_unrestricted_dominates_everything;
          Alcotest.test_case "unrestricted m=1" `Slow
            test_unrestricted_m1_equals_oblivious;
          Alcotest.test_case "unrestricted guard" `Quick
            test_unrestricted_guard;
        ] );
      ( "class-solver",
        [
          Alcotest.test_case "class detection" `Quick test_classes_detection;
          Alcotest.test_case "uniform = exhaustive" `Slow
            test_class_solver_uniform_matches_exhaustive;
          Alcotest.test_case "duplicated columns = exhaustive" `Slow
            test_class_solver_matches_exhaustive_random_classes;
          Alcotest.test_case "solves the 4.3 instance" `Quick
            test_class_solver_on_433_instance;
          Alcotest.test_case "scales past exhaustive" `Quick
            test_class_solver_scales_past_exhaustive;
          Alcotest.test_case "candidate guard" `Quick test_class_solver_guard;
          Alcotest.test_case "approximate near-uniform" `Quick
            test_class_approximate_on_near_uniform;
          Alcotest.test_case "approximate fine grid" `Quick
            test_class_approximate_grid_refines;
          Alcotest.test_case "approximate true EP" `Quick
            test_class_approximate_reports_true_ep;
        ] );
      ( "weighted",
        [
          Alcotest.test_case "unit costs reduce" `Quick
            test_expected_cost_unit_equals_paging;
          Alcotest.test_case "DP value consistent" `Quick
            test_weighted_dp_reports_consistent_cost;
          Alcotest.test_case "optimal within order" `Slow
            test_weighted_dp_optimal_within_order;
          Alcotest.test_case "defers expensive cells" `Quick
            test_weighted_dp_prefers_cheap_cells;
        ] );
      ( "coarse-dp",
        [
          Alcotest.test_case "block=1 exact" `Quick
            test_coarse_matches_full_when_block_1;
          Alcotest.test_case "close to full" `Quick test_coarse_close_to_full;
          Alcotest.test_case "reported EP real" `Quick
            test_coarse_reported_ep_is_real;
          Alcotest.test_case "20k cells" `Slow test_coarse_huge_instance_runs;
          qt prop_coarse_never_beats_full;
        ] );
    ]
