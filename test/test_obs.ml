(* Unit suite for the observability layer (lib/obs) plus the
   cross-domain determinism contract it promises: with metrics enabled,
   every counter and histogram bucket count outside the scheduler
   ([pool_*]) and wall-clock ([*_ms]) namespaces must be identical
   whether the instrumented workload ran on 1 domain or 4.  The
   disabled path must register nothing at all — that is the no-op
   guarantee the bit-identical sequential solver path rests on. *)

open Confcall

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int
let string_t = Alcotest.string

(* ---------------- clock ---------------- *)

let test_now_monotone () =
  let prev = ref (Obs.now ()) in
  for _ = 1 to 1000 do
    let t = Obs.now () in
    check bool_t "clock never goes backwards" true (t >= !prev);
    prev := t
  done

(* ---------------- counters and gauges ---------------- *)

let test_counter_semantics () =
  let m = Obs.Metrics.create () in
  Obs.Metrics.set_enabled m true;
  Obs.Metrics.incr m "a";
  Obs.Metrics.incr m "a";
  Obs.Metrics.add m "a" 5;
  Obs.Metrics.add m "b" 3;
  check int_t "incr+add accumulate" 7 (Obs.Metrics.counter_value m "a");
  check int_t "independent names" 3 (Obs.Metrics.counter_value m "b");
  check int_t "unregistered reads 0" 0 (Obs.Metrics.counter_value m "zzz");
  check bool_t "sorted snapshot" true
    (Obs.Metrics.counters m = [ ("a", 7); ("b", 3) ]);
  Obs.Metrics.reset m;
  check bool_t "reset drops names" true (Obs.Metrics.counters m = []);
  check bool_t "reset keeps enabled" true (Obs.Metrics.enabled m)

let test_gauge_semantics () =
  let m = Obs.Metrics.create () in
  Obs.Metrics.set_enabled m true;
  Obs.Metrics.gauge_set m "g" 10;
  Obs.Metrics.gauge_add m "g" (-3);
  Obs.Metrics.gauge_add m "h" 2;
  check bool_t "set/add and add-from-zero" true
    (Obs.Metrics.gauges m = [ ("g", 7); ("h", 2) ])

let test_disabled_is_noop () =
  let m = Obs.Metrics.create () in
  check bool_t "disabled by default" false (Obs.Metrics.enabled m);
  Obs.Metrics.incr m "a";
  Obs.Metrics.gauge_set m "g" 5;
  Obs.Metrics.observe m "h" 1.0;
  check bool_t "no counters registered" true (Obs.Metrics.counters m = []);
  check bool_t "no gauges registered" true (Obs.Metrics.gauges m = []);
  check bool_t "no histograms registered" true
    (Obs.Metrics.histogram_buckets m = []);
  (* Enable, record, disable: snapshots still readable, ops frozen. *)
  Obs.Metrics.set_enabled m true;
  Obs.Metrics.incr m "a";
  Obs.Metrics.set_enabled m false;
  Obs.Metrics.incr m "a";
  check int_t "disabled ops do not mutate" 1 (Obs.Metrics.counter_value m "a")

let test_kind_mismatch_rejected () =
  let m = Obs.Metrics.create () in
  Obs.Metrics.set_enabled m true;
  Obs.Metrics.incr m "x";
  (match Obs.Metrics.gauge_set m "x" 1 with
  | () -> Alcotest.fail "counter name reused as gauge"
  | exception Invalid_argument _ -> ());
  Obs.Metrics.observe m ~buckets:[| 1.0; 2.0 |] "h" 0.5;
  match Obs.Metrics.observe m ~buckets:[| 1.0; 3.0 |] "h" 0.5 with
  | () -> Alcotest.fail "histogram re-registered with different buckets"
  | exception Invalid_argument _ -> ()

(* ---------------- histograms ---------------- *)

let test_histogram_buckets () =
  let m = Obs.Metrics.create () in
  Obs.Metrics.set_enabled m true;
  let buckets = [| 1.0; 2.0; 5.0 |] in
  (* Boundary values land in the bucket whose bound equals them;
     anything above the last bound goes to the overflow bucket. *)
  List.iter
    (Obs.Metrics.observe m ~buckets "h")
    [ 0.5; 1.0; 1.5; 2.0; 5.0; 5.1; 100.0 ];
  match Obs.Metrics.histogram_buckets m with
  | [ ("h", cells) ] ->
    check bool_t "per-bucket counts (overflow last)" true
      (cells = [| 2; 2; 1; 2 |])
  | other ->
    Alcotest.failf "expected one histogram, got %d" (List.length other)

let test_histogram_layouts_increasing () =
  let increasing a =
    let ok = ref true in
    for i = 1 to Array.length a - 1 do
      if a.(i) <= a.(i - 1) then ok := false
    done;
    !ok
  in
  check bool_t "latency_ms_buckets" true (increasing Obs.latency_ms_buckets);
  check bool_t "small_count_buckets" true (increasing Obs.small_count_buckets);
  check bool_t "excess_buckets" true (increasing Obs.excess_buckets)

(* ---------------- exposition ---------------- *)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let test_exposition () =
  let m = Obs.Metrics.create () in
  Obs.Metrics.set_enabled m true;
  Obs.Metrics.incr m "reqs";
  Obs.Metrics.gauge_set m "depth" 3;
  Obs.Metrics.observe m ~buckets:[| 1.0; 2.0 |] "lat" 1.5;
  Obs.Metrics.observe m ~buckets:[| 1.0; 2.0 |] "lat" 9.0;
  let js = Obs.Metrics.to_json m in
  List.iter
    (fun frag -> check bool_t ("json has " ^ frag) true (contains js frag))
    [
      {|"counters":{"reqs":1}|};
      {|"gauges":{"depth":3}|};
      {|"count":2|};
      (* JSON buckets are cumulative, +Inf spelled as a string. *)
      {|{"le":2,"count":1}|};
      {|{"le":"+Inf","count":2}|};
    ];
  let prom = Obs.Metrics.to_prometheus m in
  List.iter
    (fun frag -> check bool_t ("prom has " ^ frag) true (contains prom frag))
    [
      "# TYPE reqs counter";
      "reqs 1";
      "# TYPE depth gauge";
      "# TYPE lat histogram";
      {|lat_bucket{le="2"} 1|};
      {|lat_bucket{le="+Inf"} 2|};
      "lat_count 2";
    ]

let test_sanitize () =
  check string_t "spec chars mapped" "bandwidth_80"
    (Obs.sanitize "bandwidth-80");
  check string_t "colon kept" "robust_0_05:0_1" (Obs.sanitize "robust-0.05:0.1");
  check string_t "leading digit prefixed" "_9lives" (Obs.sanitize "9lives")

(* ---------------- tracer ---------------- *)

let test_span_nesting () =
  let t = Obs.Trace.create () in
  Obs.Trace.set_enabled t true;
  let r =
    Obs.Trace.with_span t "outer" (fun outer ->
        check bool_t "root gets a real id" true (outer >= 0);
        let a =
          Obs.Trace.with_span t ~parent:outer "child_a" (fun _ -> 1)
        in
        let b =
          Obs.Trace.with_span t ~parent:outer "child_b" (fun _ -> 2)
        in
        a + b)
  in
  check int_t "with_span returns f's value" 3 r;
  (* Spans record even when the body raises. *)
  (try Obs.Trace.with_span t "boom" (fun _ -> failwith "x") with Failure _ -> ());
  let spans = Obs.Trace.spans t in
  check int_t "four spans" 4 (List.length spans);
  let by_name n =
    List.find (fun s -> s.Obs.Trace.name = n) spans
  in
  let outer = by_name "outer" in
  check int_t "outer is a root" Obs.Trace.no_parent outer.Obs.Trace.parent;
  List.iter
    (fun n ->
      check int_t (n ^ " parented to outer") outer.Obs.Trace.id
        (by_name n).Obs.Trace.parent)
    [ "child_a"; "child_b" ];
  List.iter
    (fun s ->
      check bool_t (s.Obs.Trace.name ^ " stop >= start") true
        (s.Obs.Trace.stop_s >= s.Obs.Trace.start_s))
    spans;
  (* Children run inside the parent's window. *)
  List.iter
    (fun n ->
      let c = by_name n in
      check bool_t (n ^ " inside outer") true
        (c.Obs.Trace.start_s >= outer.Obs.Trace.start_s
        && c.Obs.Trace.stop_s <= outer.Obs.Trace.stop_s))
    [ "child_a"; "child_b" ]

let test_span_disabled () =
  let t = Obs.Trace.create () in
  let seen = ref 42 in
  let r = Obs.Trace.with_span t "off" (fun id -> seen := id; "v") in
  check string_t "body still runs" "v" r;
  check int_t "callback sees no_parent" Obs.Trace.no_parent !seen;
  check bool_t "nothing recorded" true (Obs.Trace.spans t = [])

(* ---------------- cross-domain determinism ---------------- *)

(* Everything outside pool_* and *_ms is part of the determinism
   contract; the exemptions are scheduler decisions and wall-clock. *)
let deterministic_snapshot m =
  let keep n = not (String.length n >= 5 && String.sub n 0 5 = "pool_") in
  let is_ms n =
    let l = String.length n in
    l >= 3 && String.sub n (l - 3) 3 = "_ms"
  in
  ( List.filter (fun (n, _) -> keep n) (Obs.Metrics.counters m),
    Obs.Metrics.histogram_buckets m
    |> List.filter (fun (n, _) -> keep n && not (is_ms n))
    |> List.map (fun (n, cells) -> (n, Array.to_list cells)) )

let with_enabled_default f =
  let m = Obs.Metrics.default in
  Obs.Metrics.reset m;
  Obs.Metrics.set_enabled m true;
  Fun.protect
    ~finally:(fun () ->
      Obs.Metrics.set_enabled m false;
      Obs.Metrics.reset m)
    (fun () ->
      f ();
      deterministic_snapshot m)

let with_degree domains f =
  if domains > 1 then Exec.Pool.with_pool ~domains (fun p -> f (Some p))
  else f None

let snapshots_equal name workload =
  let snap d = with_enabled_default (fun () -> workload d) in
  let s1 = snap 1 and s4 = snap 4 in
  check bool_t (name ^ ": counters equal across domains 1/4") true
    (fst s1 = fst s4);
  check bool_t (name ^ ": histogram buckets equal across domains 1/4") true
    (snd s1 = snd s4);
  check bool_t (name ^ ": snapshot non-empty") true (fst s1 <> [])

let test_runner_counters_deterministic () =
  (* Uncertainty re-ranking scores every stage in both the sequential
     and the raced path, so the executed stage multiset is identical. *)
  let rng = Prob.Rng.create ~seed:9301 in
  let inst = Instance.random_uniform_simplex rng ~m:4 ~c:90 ~d:4 in
  let chain = Solver.[ Local_search; Greedy; Bandwidth_limited 60 ] in
  let u = Uncertainty.uniform 0.01 in
  snapshots_equal "runner" (fun d ->
      with_degree d (fun pool ->
          ignore (Runner.run ~chain ~uncertainty:u ?pool inst)))

let test_sweep_counters_deterministic () =
  let items =
    List.init 6 (fun k ->
        let seed = 9400 + k in
        {
          Sweep.id = Printf.sprintf "obs/seed%d" seed;
          compute =
            (fun () ->
              let rng = Prob.Rng.create ~seed in
              let inst = Instance.random_uniform_simplex rng ~m:3 ~c:300 ~d:4 in
              let o = Solver.solve Solver.Greedy inst in
              Printf.sprintf "%.9f" o.Solver.expected_paging);
        })
  in
  snapshots_equal "sweep" (fun d ->
      let path = Filename.temp_file "confcall_obs" ".journal" in
      Sys.remove path;
      let journal = Journal.load_or_create path in
      Fun.protect
        ~finally:(fun () ->
          Journal.close journal;
          Sys.remove path)
        (fun () ->
          with_degree d (fun pool -> ignore (Sweep.run ?pool ~journal items))))

let test_sim_counters_deterministic () =
  let cfg =
    { (Cellsim.Sim.default_config ()) with Cellsim.Sim.duration = 40.0 }
  in
  snapshots_equal "sim" (fun d ->
      with_degree d (fun pool ->
          ignore (Cellsim.Replicate.run_summary ?pool ~replicas:3 cfg)))

let () =
  Alcotest.run "obs"
    [
      ( "metrics",
        [
          Alcotest.test_case "clock monotone" `Quick test_now_monotone;
          Alcotest.test_case "counter semantics" `Quick test_counter_semantics;
          Alcotest.test_case "gauge semantics" `Quick test_gauge_semantics;
          Alcotest.test_case "disabled registry is a no-op" `Quick
            test_disabled_is_noop;
          Alcotest.test_case "kind/bucket mismatch rejected" `Quick
            test_kind_mismatch_rejected;
          Alcotest.test_case "histogram bucket boundaries" `Quick
            test_histogram_buckets;
          Alcotest.test_case "shared layouts strictly increasing" `Quick
            test_histogram_layouts_increasing;
          Alcotest.test_case "JSON and Prometheus exposition" `Quick
            test_exposition;
          Alcotest.test_case "name sanitisation" `Quick test_sanitize;
        ] );
      ( "trace",
        [
          Alcotest.test_case "span nesting and windows" `Quick
            test_span_nesting;
          Alcotest.test_case "disabled tracer is a no-op" `Quick
            test_span_disabled;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "runner counters, domains 1 vs 4" `Quick
            test_runner_counters_deterministic;
          Alcotest.test_case "sweep counters, domains 1 vs 4" `Quick
            test_sweep_counters_deterministic;
          Alcotest.test_case "sim counters, domains 1 vs 4" `Quick
            test_sim_counters_deterministic;
        ] );
    ]
