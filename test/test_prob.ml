(* Tests for the probability substrate: Rng, Dist, Stats, Sampling. *)

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int
let float_t eps = Alcotest.float eps
let qt = QCheck_alcotest.to_alcotest

(* -------------------- Rng -------------------- *)

let test_rng_deterministic () =
  let a = Prob.Rng.create ~seed:42 and b = Prob.Rng.create ~seed:42 in
  for _ = 1 to 100 do
    check bool_t "same stream" true (Prob.Rng.bits64 a = Prob.Rng.bits64 b)
  done

let test_rng_seeds_differ () =
  let a = Prob.Rng.create ~seed:1 and b = Prob.Rng.create ~seed:2 in
  let differs = ref false in
  for _ = 1 to 10 do
    if Prob.Rng.bits64 a <> Prob.Rng.bits64 b then differs := true
  done;
  check bool_t "streams differ" true !differs

let test_rng_split_independent () =
  let a = Prob.Rng.create ~seed:7 in
  let b = Prob.Rng.split a in
  let c = Prob.Rng.split a in
  check bool_t "children differ" true (Prob.Rng.bits64 b <> Prob.Rng.bits64 c)

let test_rng_copy () =
  let a = Prob.Rng.create ~seed:5 in
  ignore (Prob.Rng.bits64 a);
  let b = Prob.Rng.copy a in
  check bool_t "copy replays" true (Prob.Rng.bits64 a = Prob.Rng.bits64 b)

let test_rng_int_bounds () =
  let rng = Prob.Rng.create ~seed:3 in
  for _ = 1 to 1000 do
    let v = Prob.Rng.int rng 7 in
    check bool_t "in range" true (v >= 0 && v < 7)
  done;
  match Prob.Rng.int rng 0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "bound 0 accepted"

let test_rng_int_uniformity () =
  let rng = Prob.Rng.create ~seed:17 in
  let counts = Array.make 5 0 in
  let n = 50_000 in
  for _ = 1 to n do
    let v = Prob.Rng.int rng 5 in
    counts.(v) <- counts.(v) + 1
  done;
  Array.iter
    (fun cnt ->
      let freq = float_of_int cnt /. float_of_int n in
      check bool_t "roughly uniform" true (abs_float (freq -. 0.2) < 0.01))
    counts

let test_rng_unit_float_range () =
  let rng = Prob.Rng.create ~seed:19 in
  for _ = 1 to 1000 do
    let u = Prob.Rng.unit_float rng in
    check bool_t "in [0,1)" true (u >= 0.0 && u < 1.0)
  done

let test_rng_exponential_mean () =
  let rng = Prob.Rng.create ~seed:23 in
  let acc = Prob.Stats.Acc.create () in
  for _ = 1 to 50_000 do
    Prob.Stats.Acc.add acc (Prob.Rng.exponential rng ~rate:2.0)
  done;
  check bool_t "mean ~ 1/2" true
    (abs_float (Prob.Stats.Acc.mean acc -. 0.5) < 0.02)

let test_rng_normal_moments () =
  let rng = Prob.Rng.create ~seed:29 in
  let acc = Prob.Stats.Acc.create () in
  for _ = 1 to 50_000 do
    Prob.Stats.Acc.add acc (Prob.Rng.normal rng)
  done;
  let s = Prob.Stats.Acc.summary acc in
  check bool_t "mean ~ 0" true (abs_float s.Prob.Stats.mean < 0.03);
  check bool_t "var ~ 1" true (abs_float (s.Prob.Stats.variance -. 1.0) < 0.05)

let test_rng_gamma_mean () =
  let rng = Prob.Rng.create ~seed:31 in
  List.iter
    (fun shape ->
      let acc = Prob.Stats.Acc.create () in
      for _ = 1 to 30_000 do
        Prob.Stats.Acc.add acc (Prob.Rng.gamma rng ~shape)
      done;
      check bool_t
        (Printf.sprintf "gamma mean shape=%.2f" shape)
        true
        (abs_float (Prob.Stats.Acc.mean acc -. shape) < 0.1 *. Stdlib.max 1.0 shape))
    [ 0.5; 1.0; 3.0 ]

let test_rng_poisson_mean () =
  let rng = Prob.Rng.create ~seed:37 in
  let acc = Prob.Stats.Acc.create () in
  for _ = 1 to 30_000 do
    Prob.Stats.Acc.add acc (float_of_int (Prob.Rng.poisson rng ~mean:4.0))
  done;
  check bool_t "poisson mean" true (abs_float (Prob.Stats.Acc.mean acc -. 4.0) < 0.1)

let test_rng_shuffle_permutes () =
  let rng = Prob.Rng.create ~seed:41 in
  let a = Array.init 20 (fun i -> i) in
  Prob.Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  check Alcotest.(array int) "still a permutation"
    (Array.init 20 (fun i -> i))
    sorted

(* -------------------- Dist -------------------- *)

let test_dist_generators_are_distributions () =
  let rng = Prob.Rng.create ~seed:43 in
  List.iter
    (fun (name, v) ->
      check bool_t name true (Prob.Dist.is_distribution v))
    [
      "uniform", Prob.Dist.uniform 7;
      "zipf", Prob.Dist.zipf ~s:1.1 10;
      "geometric", Prob.Dist.geometric ~ratio:0.5 8;
      "point mass", Prob.Dist.point_mass ~eps:0.001 6 2;
      "dirichlet", Prob.Dist.dirichlet rng ~alpha:0.5 9;
      "simplex", Prob.Dist.uniform_simplex rng 5;
    ]

let test_dist_zipf_ordering () =
  let v = Prob.Dist.zipf ~s:1.0 5 in
  for j = 0 to 3 do
    check bool_t "non-increasing" true (v.(j) >= v.(j + 1))
  done;
  (* s = 0 is uniform. *)
  let u = Prob.Dist.zipf ~s:0.0 4 in
  Array.iter (fun x -> check (float_t 1e-12) "uniform" 0.25 x) u

let test_dist_point_mass () =
  let v = Prob.Dist.point_mass ~eps:0.01 5 3 in
  check (float_t 1e-12) "peak" 0.96 v.(3);
  check (float_t 1e-12) "rest" 0.01 v.(0)

let test_dist_sample_frequencies () =
  let rng = Prob.Rng.create ~seed:47 in
  let v = [| 0.5; 0.3; 0.2 |] in
  let counts = Array.make 3 0 in
  let n = 50_000 in
  for _ = 1 to n do
    let j = Prob.Dist.sample rng v in
    counts.(j) <- counts.(j) + 1
  done;
  Array.iteri
    (fun j cnt ->
      check bool_t "frequency matches" true
        (abs_float ((float_of_int cnt /. float_of_int n) -. v.(j)) < 0.01))
    counts

let test_dist_entropy () =
  check (float_t 1e-9) "uniform 4" 2.0 (Prob.Dist.entropy (Prob.Dist.uniform 4));
  check (float_t 1e-9) "point" 0.0 (Prob.Dist.entropy [| 1.0; 0.0 |])

let test_dist_total_variation () =
  check (float_t 1e-12) "identical" 0.0
    (Prob.Dist.total_variation [| 0.5; 0.5 |] [| 0.5; 0.5 |]);
  check (float_t 1e-12) "disjoint" 1.0
    (Prob.Dist.total_variation [| 1.0; 0.0 |] [| 0.0; 1.0 |])

let test_dist_perturb_keeps_distribution () =
  let rng = Prob.Rng.create ~seed:53 in
  let v = Prob.Dist.zipf ~s:1.0 6 in
  let w = Prob.Dist.perturb rng ~eps:0.1 v in
  check bool_t "still a distribution" true (Prob.Dist.is_distribution w);
  check bool_t "close to original" true (Prob.Dist.total_variation v w < 0.1)

let prop_normalize_sums_to_one =
  QCheck.Test.make ~name:"normalize sums to 1" ~count:200
    (QCheck.list_of_size (QCheck.Gen.int_range 1 20) (QCheck.int_range 1 1000))
    (fun l ->
      let v = Prob.Dist.normalize (Array.of_list (List.map float_of_int l)) in
      abs_float (Array.fold_left ( +. ) 0.0 v -. 1.0) < 1e-9)

let prop_dirichlet_valid =
  QCheck.Test.make ~name:"dirichlet always valid" ~count:100
    (QCheck.pair (QCheck.int_range 1 20) (QCheck.int_range 1 1000000))
    (fun (c, seed) ->
      let rng = Prob.Rng.create ~seed in
      Prob.Dist.is_distribution (Prob.Dist.dirichlet rng ~alpha:0.3 c))

(* -------------------- Stats -------------------- *)

let test_stats_summary () =
  let s = Prob.Stats.summarize [| 1.0; 2.0; 3.0; 4.0 |] in
  check int_t "n" 4 s.Prob.Stats.n;
  check (float_t 1e-12) "mean" 2.5 s.Prob.Stats.mean;
  check (float_t 1e-9) "variance" (5.0 /. 3.0) s.Prob.Stats.variance;
  check (float_t 1e-12) "min" 1.0 s.Prob.Stats.min;
  check (float_t 1e-12) "max" 4.0 s.Prob.Stats.max

let test_stats_acc_matches_summarize () =
  let xs = [| 3.1; -2.0; 7.7; 0.0; 5.5; 5.5 |] in
  let acc = Prob.Stats.Acc.create () in
  Array.iter (Prob.Stats.Acc.add acc) xs;
  let a = Prob.Stats.Acc.summary acc and b = Prob.Stats.summarize xs in
  check (float_t 1e-9) "mean" b.Prob.Stats.mean a.Prob.Stats.mean;
  check (float_t 1e-9) "variance" b.Prob.Stats.variance a.Prob.Stats.variance

let test_stats_quantiles () =
  let xs = [| 4.0; 1.0; 3.0; 2.0 |] in
  check (float_t 1e-12) "median" 2.5 (Prob.Stats.median xs);
  check (float_t 1e-12) "q0" 1.0 (Prob.Stats.quantile xs 0.0);
  check (float_t 1e-12) "q1" 4.0 (Prob.Stats.quantile xs 1.0)

let test_stats_histogram () =
  let h = Prob.Stats.histogram ~bins:4 ~lo:0.0 ~hi:4.0 [| 0.5; 1.5; 1.6; 3.9; -1.0; 9.0 |] in
  check Alcotest.(array int) "counts" [| 2; 2; 0; 2 |] h

let test_stats_single_sample () =
  let s = Prob.Stats.summarize [| 5.0 |] in
  check (float_t 1e-12) "variance 0" 0.0 s.Prob.Stats.variance

(* -------------------- Sampling (alias method) -------------------- *)

let test_alias_matches_weights () =
  let rng = Prob.Rng.create ~seed:59 in
  let weights = [| 5.0; 3.0; 2.0; 0.0; 10.0 |] in
  let table = Prob.Sampling.create weights in
  check int_t "size" 5 (Prob.Sampling.size table);
  let counts = Array.make 5 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let j = Prob.Sampling.draw table rng in
    counts.(j) <- counts.(j) + 1
  done;
  check int_t "zero weight never drawn" 0 counts.(3);
  Array.iteri
    (fun j cnt ->
      let expected = weights.(j) /. 20.0 in
      check bool_t
        (Printf.sprintf "frequency %d" j)
        true
        (abs_float ((float_of_int cnt /. float_of_int n) -. expected) < 0.01))
    counts

let test_alias_probability_reconstruction () =
  let table = Prob.Sampling.create [| 1.0; 3.0 |] in
  check (float_t 1e-12) "p0" 0.25 (Prob.Sampling.probability table 0);
  check (float_t 1e-12) "p1" 0.75 (Prob.Sampling.probability table 1)

let test_alias_rejects_bad_input () =
  (match Prob.Sampling.create [||] with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "empty accepted");
  match Prob.Sampling.create [| 0.0; 0.0 |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "all-zero accepted"

(* -------------------- Estimate -------------------- *)

let test_estimate_row_mle () =
  let row = Prob.Estimate.row_mle ~alpha:0.0 [| 3; 1; 0 |] in
  Alcotest.(check (float 1e-12)) "mle 0" 0.75 row.(0);
  Alcotest.(check (float 1e-12)) "mle 1" 0.25 row.(1);
  Alcotest.(check (float 1e-12)) "mle 2" 0.0 row.(2);
  (* add-one smoothing: (c_j + 1) / (n + c) *)
  let sm = Prob.Estimate.row_mle [| 3; 1; 0 |] in
  Alcotest.(check (float 1e-12)) "smoothed 0" (4.0 /. 7.0) sm.(0);
  Alcotest.(check (float 1e-12)) "smoothed 2" (1.0 /. 7.0) sm.(2);
  Alcotest.(check (float 1e-9)) "sums to one" 1.0
    (Array.fold_left ( +. ) 0.0 sm);
  (match Prob.Estimate.row_mle ~alpha:0.0 [| 0; 0 |] with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "all-zero plain MLE accepted");
  match Prob.Estimate.row_mle [| 1; -2 |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative count accepted"

let test_estimate_dkw () =
  let e = Prob.Estimate.dkw_eps ~n:100 ~confidence:0.95 in
  Alcotest.(check (float 1e-12)) "dkw formula"
    (sqrt (log (2.0 /. 0.05) /. 200.0)) e;
  (* shrinks with n, grows with confidence, capped at 1 *)
  if Prob.Estimate.dkw_eps ~n:400 ~confidence:0.95 >= e then
    Alcotest.fail "radius not shrinking in n";
  if Prob.Estimate.dkw_eps ~n:100 ~confidence:0.99 <= e then
    Alcotest.fail "radius not growing in confidence";
  Alcotest.(check (float 0.0)) "n=0 knows nothing" 1.0
    (Prob.Estimate.dkw_eps ~n:0 ~confidence:0.95);
  match Prob.Estimate.dkw_eps ~n:10 ~confidence:1.0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "confidence = 1 accepted"

let test_estimate_rows () =
  let rows =
    Prob.Estimate.estimate_rows ~confidence:0.9
      [| [| 8; 2 |]; [| 0; 0 |] |]
  in
  Alcotest.(check int) "n from counts" 10 rows.(0).Prob.Estimate.n;
  Alcotest.(check int) "empty row n" 0 rows.(1).Prob.Estimate.n;
  Alcotest.(check (float 0.0)) "empty row radius" 1.0
    rows.(1).Prob.Estimate.eps;
  Array.iter
    (fun r ->
       Alcotest.(check (float 1e-9)) "dist normalized" 1.0
         (Array.fold_left ( +. ) 0.0 r.Prob.Estimate.dist))
    rows

let () =
  Alcotest.run "prob"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "seeds differ" `Quick test_rng_seeds_differ;
          Alcotest.test_case "split" `Quick test_rng_split_independent;
          Alcotest.test_case "copy" `Quick test_rng_copy;
          Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
          Alcotest.test_case "int uniformity" `Slow test_rng_int_uniformity;
          Alcotest.test_case "unit float" `Quick test_rng_unit_float_range;
          Alcotest.test_case "exponential" `Slow test_rng_exponential_mean;
          Alcotest.test_case "normal" `Slow test_rng_normal_moments;
          Alcotest.test_case "gamma" `Slow test_rng_gamma_mean;
          Alcotest.test_case "poisson" `Slow test_rng_poisson_mean;
          Alcotest.test_case "shuffle" `Quick test_rng_shuffle_permutes;
        ] );
      ( "dist",
        [
          Alcotest.test_case "generators valid" `Quick
            test_dist_generators_are_distributions;
          Alcotest.test_case "zipf" `Quick test_dist_zipf_ordering;
          Alcotest.test_case "point mass" `Quick test_dist_point_mass;
          Alcotest.test_case "sample frequencies" `Slow
            test_dist_sample_frequencies;
          Alcotest.test_case "entropy" `Quick test_dist_entropy;
          Alcotest.test_case "total variation" `Quick test_dist_total_variation;
          Alcotest.test_case "perturb" `Quick test_dist_perturb_keeps_distribution;
          qt prop_normalize_sums_to_one;
          qt prop_dirichlet_valid;
        ] );
      ( "stats",
        [
          Alcotest.test_case "summary" `Quick test_stats_summary;
          Alcotest.test_case "acc = summarize" `Quick
            test_stats_acc_matches_summarize;
          Alcotest.test_case "quantiles" `Quick test_stats_quantiles;
          Alcotest.test_case "histogram" `Quick test_stats_histogram;
          Alcotest.test_case "single sample" `Quick test_stats_single_sample;
        ] );
      ( "sampling",
        [
          Alcotest.test_case "alias frequencies" `Slow test_alias_matches_weights;
          Alcotest.test_case "probability" `Quick
            test_alias_probability_reconstruction;
          Alcotest.test_case "bad input" `Quick test_alias_rejects_bad_input;
        ] );
      ( "estimate",
        [
          Alcotest.test_case "row mle" `Quick test_estimate_row_mle;
          Alcotest.test_case "dkw radius" `Quick test_estimate_dkw;
          Alcotest.test_case "estimate rows" `Quick test_estimate_rows;
        ] );
    ]
