(* Tests for the cellular-system simulator substrate. *)

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int
let float_t eps = Alcotest.float eps
let qt = QCheck_alcotest.to_alcotest

(* -------------------- Heap -------------------- *)

let test_heap_ordering () =
  let h = Cellsim.Heap.create () in
  List.iter
    (fun (p, v) -> Cellsim.Heap.push h ~priority:p v)
    [ 5.0, "e"; 1.0, "a"; 3.0, "c"; 2.0, "b"; 4.0, "d" ];
  check int_t "length" 5 (Cellsim.Heap.length h);
  let order = ref [] in
  let rec drain () =
    match Cellsim.Heap.pop h with
    | None -> ()
    | Some (_, v) ->
      order := v :: !order;
      drain ()
  in
  drain ();
  check Alcotest.(list string) "sorted" [ "a"; "b"; "c"; "d"; "e" ]
    (List.rev !order)

let test_heap_peek () =
  let h = Cellsim.Heap.create () in
  check bool_t "empty peek" true (Cellsim.Heap.peek h = None);
  Cellsim.Heap.push h ~priority:2.0 20;
  Cellsim.Heap.push h ~priority:1.0 10;
  check bool_t "peek min" true (Cellsim.Heap.peek h = Some (1.0, 10));
  check int_t "peek preserves" 2 (Cellsim.Heap.length h)

let prop_heap_sorts =
  QCheck.Test.make ~name:"heap drains in sorted order" ~count:100
    (QCheck.list_of_size (QCheck.Gen.int_range 0 50) (QCheck.int_range 0 1000))
    (fun l ->
      let h = Cellsim.Heap.create () in
      List.iter (fun x -> Cellsim.Heap.push h ~priority:(float_of_int x) x) l;
      let rec drain acc =
        match Cellsim.Heap.pop h with
        | None -> List.rev acc
        | Some (_, v) -> drain (v :: acc)
      in
      drain [] = List.sort compare l)

(* -------------------- Hex -------------------- *)

let test_hex_indexing () =
  let h = Cellsim.Hex.create ~rows:3 ~cols:4 in
  check int_t "cells" 12 (Cellsim.Hex.cells h);
  check int_t "index" 6 (Cellsim.Hex.index h ~row:1 ~col:2);
  check bool_t "coords roundtrip" true (Cellsim.Hex.coords h 6 = (1, 2))

let test_hex_neighbors_interior () =
  let h = Cellsim.Hex.create ~rows:5 ~cols:5 in
  let center = Cellsim.Hex.index h ~row:2 ~col:2 in
  check int_t "six neighbors" 6 (List.length (Cellsim.Hex.neighbors h center))

let test_hex_neighbors_corner () =
  let h = Cellsim.Hex.create ~rows:3 ~cols:3 in
  let corner = Cellsim.Hex.index h ~row:0 ~col:0 in
  let n = List.length (Cellsim.Hex.neighbors h corner) in
  check bool_t "corner degree" true (n >= 2 && n <= 3)

let test_hex_neighbors_symmetric () =
  let h = Cellsim.Hex.create ~rows:4 ~cols:5 in
  for cell = 0 to Cellsim.Hex.cells h - 1 do
    List.iter
      (fun n ->
        check bool_t "symmetric" true
          (List.mem cell (Cellsim.Hex.neighbors h n)))
      (Cellsim.Hex.neighbors h cell)
  done

let test_hex_distance () =
  let h = Cellsim.Hex.create ~rows:5 ~cols:5 in
  let a = Cellsim.Hex.index h ~row:0 ~col:0 in
  check int_t "self" 0 (Cellsim.Hex.distance h a a);
  List.iter
    (fun n -> check int_t "neighbor distance" 1 (Cellsim.Hex.distance h a n))
    (Cellsim.Hex.neighbors h a)

let test_hex_distance_triangle () =
  let h = Cellsim.Hex.create ~rows:4 ~cols:4 in
  let n = Cellsim.Hex.cells h in
  for a = 0 to n - 1 do
    for b = 0 to n - 1 do
      for c = 0 to n - 1 do
        let d = Cellsim.Hex.distance h in
        check bool_t "triangle" true (d a c <= d a b + d b c)
      done
    done
  done

let test_hex_disk () =
  let h = Cellsim.Hex.create ~rows:5 ~cols:5 in
  let center = Cellsim.Hex.index h ~row:2 ~col:2 in
  let d0 = Cellsim.Hex.disk h center ~radius:0 in
  check Alcotest.(list int) "radius 0" [ center ] d0;
  let d1 = Cellsim.Hex.disk h center ~radius:1 in
  check int_t "radius 1 is center + neighbors" 7 (List.length d1)

(* -------------------- Mobility -------------------- *)

let hex44 () = Cellsim.Hex.create ~rows:4 ~cols:4

let test_mobility_random_walk_stochastic () =
  let m = Cellsim.Mobility.random_walk (hex44 ()) ~stay:0.3 in
  Array.iter
    (fun row ->
      check (float_t 1e-9) "row sum" 1.0 (Array.fold_left ( +. ) 0.0 row))
    m.Cellsim.Mobility.rows

let test_mobility_step_moves_to_neighbor_or_stays () =
  let hex = hex44 () in
  let m = Cellsim.Mobility.random_walk hex ~stay:0.3 in
  let rng = Prob.Rng.create ~seed:11 in
  for _ = 1 to 200 do
    let cell = Prob.Rng.int rng (Cellsim.Hex.cells hex) in
    let next = Cellsim.Mobility.step m rng ~cell in
    check bool_t "adjacent or same" true
      (next = cell || List.mem next (Cellsim.Hex.neighbors hex cell))
  done

let test_mobility_stationary_is_fixed_point () =
  let m = Cellsim.Mobility.random_walk (hex44 ()) ~stay:0.2 in
  let pi = Cellsim.Mobility.stationary m in
  check bool_t "distribution" true (Prob.Dist.is_distribution pi);
  let pushed = Cellsim.Mobility.diffuse m pi ~steps:1 in
  check bool_t "fixed point" true (Prob.Dist.total_variation pi pushed < 1e-8)

let test_mobility_drift_moves_east () =
  let hex = Cellsim.Hex.create ~rows:3 ~cols:8 in
  let m = Cellsim.Mobility.drift_walk hex ~stay:0.1 ~east_bias:5.0 in
  let pi = Cellsim.Mobility.stationary m in
  (* Stationary mass in the eastern half should dominate. *)
  let east = ref 0.0 and west = ref 0.0 in
  Array.iteri
    (fun cell p ->
      let _, col = Cellsim.Hex.coords hex cell in
      if col >= 4 then east := !east +. p else west := !west +. p)
    pi;
  check bool_t "east heavier" true (!east > !west)

let test_mobility_teleport () =
  let hex = hex44 () in
  let base = Cellsim.Mobility.random_walk hex ~stay:0.5 in
  let target = Prob.Dist.point_mass ~eps:0.001 (Cellsim.Hex.cells hex) 0 in
  let m = Cellsim.Mobility.teleport base ~jump:0.5 ~target in
  Array.iter
    (fun row ->
      check (float_t 1e-9) "row sum" 1.0 (Array.fold_left ( +. ) 0.0 row))
    m.Cellsim.Mobility.rows;
  (* Cell 0 must now be reachable from everywhere. *)
  Array.iter
    (fun row -> check bool_t "jump mass" true (row.(0) > 0.4))
    m.Cellsim.Mobility.rows

let test_mobility_diffuse_spreads () =
  let hex = hex44 () in
  let m = Cellsim.Mobility.random_walk hex ~stay:0.2 in
  let point = Prob.Dist.point_mass ~eps:1e-9 (Cellsim.Hex.cells hex) 5 in
  let after = Cellsim.Mobility.diffuse m point ~steps:3 in
  check bool_t "entropy grows" true
    (Prob.Dist.entropy after > Prob.Dist.entropy point)

(* -------------------- Profile -------------------- *)

let test_profile_counts () =
  let p = Cellsim.Profile.create ~cells:4 ~decay:1.0 ~smoothing:0.01 in
  Cellsim.Profile.observe p 2;
  Cellsim.Profile.observe p 2;
  Cellsim.Profile.observe p 1;
  check int_t "observations" 3 (Cellsim.Profile.observations p);
  let d = Cellsim.Profile.distribution p in
  check bool_t "is distribution" true (Prob.Dist.is_distribution d);
  check bool_t "mode at 2" true (d.(2) > d.(1) && d.(1) > d.(0))

let test_profile_decay_forgets () =
  let p = Cellsim.Profile.create ~cells:3 ~decay:0.5 ~smoothing:0.001 in
  for _ = 1 to 10 do
    Cellsim.Profile.observe p 0
  done;
  for _ = 1 to 3 do
    Cellsim.Profile.observe p 2
  done;
  let d = Cellsim.Profile.distribution p in
  check bool_t "recent cell dominates" true (d.(2) > d.(0))

let test_profile_distribution_over () =
  let p = Cellsim.Profile.create ~cells:5 ~decay:1.0 ~smoothing:0.1 in
  Cellsim.Profile.observe p 1;
  Cellsim.Profile.observe p 3;
  let d = Cellsim.Profile.distribution_over p [| 1; 3 |] in
  check int_t "restricted size" 2 (Array.length d);
  check (float_t 1e-9) "renormalized" 1.0 (Array.fold_left ( +. ) 0.0 d)

let test_profile_copy_independent () =
  let p = Cellsim.Profile.create ~cells:3 ~decay:1.0 ~smoothing:0.1 in
  Cellsim.Profile.observe p 0;
  let p2 = Cellsim.Profile.copy p in
  Cellsim.Profile.observe p2 1;
  check int_t "original untouched" 1 (Cellsim.Profile.observations p);
  check int_t "copy advanced" 2 (Cellsim.Profile.observations p2)

(* -------------------- Location areas -------------------- *)

let test_la_grid_partition () =
  let hex = Cellsim.Hex.create ~rows:6 ~cols:6 in
  let la = Cellsim.Location_area.grid hex ~block_rows:3 ~block_cols:3 in
  check int_t "areas" 4 (Cellsim.Location_area.areas la);
  (* Partition: every cell in exactly one area. *)
  let seen = Array.make (Cellsim.Hex.cells hex) 0 in
  for a = 0 to Cellsim.Location_area.areas la - 1 do
    Array.iter
      (fun cell -> seen.(cell) <- seen.(cell) + 1)
      (Cellsim.Location_area.cells_of_area la a)
  done;
  Array.iter (fun n -> check int_t "exactly once" 1 n) seen

let test_la_crossing () =
  let hex = Cellsim.Hex.create ~rows:4 ~cols:4 in
  let la = Cellsim.Location_area.grid hex ~block_rows:2 ~block_cols:2 in
  let a = Cellsim.Hex.index hex ~row:0 ~col:0 in
  let b = Cellsim.Hex.index hex ~row:0 ~col:1 in
  let c = Cellsim.Hex.index hex ~row:0 ~col:2 in
  check bool_t "same block" false
    (Cellsim.Location_area.crossing la ~from_cell:a ~to_cell:b);
  check bool_t "different block" true
    (Cellsim.Location_area.crossing la ~from_cell:b ~to_cell:c)

let test_la_single_and_per_cell () =
  let hex = Cellsim.Hex.create ~rows:3 ~cols:3 in
  check int_t "single" 1
    (Cellsim.Location_area.areas (Cellsim.Location_area.single hex));
  check int_t "per-cell" 9
    (Cellsim.Location_area.areas (Cellsim.Location_area.per_cell hex))

(* -------------------- Event engine -------------------- *)

let test_event_ordering_and_clock () =
  let e = Cellsim.Event.create () in
  Cellsim.Event.schedule e ~at:3.0 "c";
  Cellsim.Event.schedule e ~at:1.0 "a";
  Cellsim.Event.schedule e ~at:2.0 "b";
  let log = ref [] in
  Cellsim.Event.run_until e ~stop:10.0 (fun at v -> log := (at, v) :: !log);
  check
    Alcotest.(list (pair (float 0.0) string))
    "ordered"
    [ 1.0, "a"; 2.0, "b"; 3.0, "c" ]
    (List.rev !log);
  check (float_t 1e-12) "clock" 3.0 (Cellsim.Event.now e)

let test_event_stop_leaves_future () =
  let e = Cellsim.Event.create () in
  Cellsim.Event.schedule e ~at:1.0 "a";
  Cellsim.Event.schedule e ~at:5.0 "late";
  let count = ref 0 in
  Cellsim.Event.run_until e ~stop:2.0 (fun _ _ -> incr count);
  check int_t "only early" 1 !count;
  check int_t "late pending" 1 (Cellsim.Event.pending e)

let test_event_rejects_past () =
  let e = Cellsim.Event.create () in
  Cellsim.Event.schedule e ~at:2.0 ();
  ignore (Cellsim.Event.next e);
  match Cellsim.Event.schedule e ~at:1.0 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "past accepted"

let test_event_cascade () =
  (* Handlers can schedule new events. *)
  let e = Cellsim.Event.create () in
  Cellsim.Event.schedule e ~at:1.0 3;
  let total = ref 0 in
  Cellsim.Event.run_until e ~stop:100.0 (fun _ k ->
      incr total;
      if k > 0 then Cellsim.Event.schedule_after e ~delay:1.0 (k - 1));
  check int_t "chain of events" 4 !total

(* -------------------- Traffic -------------------- *)

let test_traffic_group_distinct () =
  let t =
    Cellsim.Traffic.create ~rate:1.0 ~group_size:(Cellsim.Traffic.Fixed 5)
      ~users:20
  in
  let rng = Prob.Rng.create ~seed:13 in
  for _ = 1 to 100 do
    let g = Cellsim.Traffic.draw_group t rng in
    check int_t "size" 5 (Array.length g);
    let sorted = Array.copy g in
    Array.sort compare sorted;
    for i = 0 to 3 do
      check bool_t "distinct" true (sorted.(i) <> sorted.(i + 1))
    done;
    Array.iter (fun u -> check bool_t "in range" true (u >= 0 && u < 20)) g
  done

let test_traffic_interarrival_mean () =
  let t =
    Cellsim.Traffic.create ~rate:4.0 ~group_size:(Cellsim.Traffic.Fixed 2)
      ~users:10
  in
  let rng = Prob.Rng.create ~seed:17 in
  let acc = Prob.Stats.Acc.create () in
  for _ = 1 to 30_000 do
    Prob.Stats.Acc.add acc (Cellsim.Traffic.next_arrival t rng)
  done;
  check bool_t "mean 1/rate" true (abs_float (Prob.Stats.Acc.mean acc -. 0.25) < 0.01)

let test_traffic_size_ranges () =
  let rng = Prob.Rng.create ~seed:19 in
  let t =
    Cellsim.Traffic.create ~rate:1.0
      ~group_size:(Cellsim.Traffic.Uniform_range (2, 4)) ~users:10
  in
  for _ = 1 to 200 do
    let n = Array.length (Cellsim.Traffic.draw_group t rng) in
    check bool_t "in range" true (n >= 2 && n <= 4)
  done;
  let t2 =
    Cellsim.Traffic.create ~rate:1.0
      ~group_size:(Cellsim.Traffic.Geometric_capped (0.5, 6)) ~users:10
  in
  for _ = 1 to 200 do
    let n = Array.length (Cellsim.Traffic.draw_group t2 rng) in
    check bool_t "capped" true (n >= 1 && n <= 6)
  done

(* -------------------- End-to-end simulation -------------------- *)

let small_config () =
  let hex = Cellsim.Hex.create ~rows:4 ~cols:4 in
  {
    Cellsim.Sim.hex;
    mobility = Cellsim.Mobility.random_walk hex ~stay:0.4;
    areas = Cellsim.Location_area.grid hex ~block_rows:2 ~block_cols:2;
    users = 12;
    traffic =
      Cellsim.Traffic.create ~rate:0.4 ~group_size:(Cellsim.Traffic.Fixed 2)
        ~users:12;
    schemes = [ Cellsim.Sim.Blanket; Cellsim.Sim.Selective 2; Cellsim.Sim.Selective 3 ];
    reporting = Cellsim.Reporting.Area;
    mobility_schedule = [];
    call_duration = 0.0;
    track_ongoing = true;
    faults = None;
    estimator = Cellsim.Sim.Live;
    aging = None;
    profile_decay = 0.9;
    profile_smoothing = 0.05;
    duration = 150.0;
    seed = 77;
  }

let test_sim_runs_and_is_deterministic () =
  let r1 = Cellsim.Sim.run (small_config ()) in
  let r2 = Cellsim.Sim.run (small_config ()) in
  check bool_t "calls happened" true (r1.Cellsim.Sim.total_calls > 10);
  check int_t "same calls" r1.Cellsim.Sim.total_calls r2.Cellsim.Sim.total_calls;
  check int_t "same updates" r1.Cellsim.Sim.updates r2.Cellsim.Sim.updates;
  List.iter2
    (fun a b ->
      check int_t "same cells paged" a.Cellsim.Sim.cells_paged
        b.Cellsim.Sim.cells_paged)
    r1.Cellsim.Sim.per_scheme r2.Cellsim.Sim.per_scheme

let test_sim_selective_beats_blanket () =
  let r = Cellsim.Sim.run (small_config ()) in
  let find scheme =
    List.find (fun s -> s.Cellsim.Sim.scheme = scheme) r.Cellsim.Sim.per_scheme
  in
  let blanket = find Cellsim.Sim.Blanket in
  let selective = find (Cellsim.Sim.Selective 2) in
  check bool_t "selective pages fewer cells" true
    (selective.Cellsim.Sim.cells_paged < blanket.Cellsim.Sim.cells_paged);
  check bool_t "but uses more rounds" true
    (selective.Cellsim.Sim.rounds_used >= blanket.Cellsim.Sim.rounds_used)

let test_sim_deeper_delay_pages_less () =
  let r = Cellsim.Sim.run (small_config ()) in
  let find scheme =
    List.find (fun s -> s.Cellsim.Sim.scheme = scheme) r.Cellsim.Sim.per_scheme
  in
  let d2 = find (Cellsim.Sim.Selective 2) in
  let d3 = find (Cellsim.Sim.Selective 3) in
  check bool_t "expected paging decreases with d" true
    (d3.Cellsim.Sim.expected_paging <= d2.Cellsim.Sim.expected_paging +. 1e-6)

(* -------------------- Fault injection -------------------- *)

let with_faults faults config = { config with Cellsim.Sim.faults }

let test_sim_none_faults_identity () =
  (* [faults = Some Faults.none] must reproduce the clean run exactly:
     the fault executor consumes no extra randomness when every fault
     probability is zero and q = 1. Structural equality pins every
     metric, including the per-call float summaries. *)
  let clean = Cellsim.Sim.run (small_config ()) in
  let wired =
    Cellsim.Sim.run (with_faults (Some Cellsim.Faults.none) (small_config ()))
  in
  check bool_t "identical results" true (clean = wired)

let test_sim_zero_faults_with_retry_identity () =
  (* A retry policy alone changes nothing when no fault can fire: every
     device is found in the base rounds, so no retry cycle runs. *)
  List.iter
    (fun retry ->
      let faults = Some { Cellsim.Faults.none with Cellsim.Faults.retry } in
      let r = Cellsim.Sim.run (with_faults faults (small_config ())) in
      let clean = Cellsim.Sim.run (small_config ()) in
      check bool_t
        (Printf.sprintf "retry %s is inert"
           (Cellsim.Faults.retry_to_string retry))
        true (r = clean))
    [
      Cellsim.Faults.Repeat { cycles = 2; backoff = 1 };
      Cellsim.Faults.Escalate { after = 1; to_blanket = true };
    ]

let faulty_config () =
  with_faults
    (Some
       {
         Cellsim.Faults.page_loss = 0.1;
         detect_q = 0.8;
         outage_rate = 0.01;
         outage_repair = 5.0;
         report_loss = 0.2;
         report_delay = 1.5;
         retry = Cellsim.Faults.Escalate { after = 1; to_blanket = true };
       })
    (small_config ())

let test_sim_faulty_run_deterministic () =
  let r1 = Cellsim.Sim.run (faulty_config ()) in
  let r2 = Cellsim.Sim.run (faulty_config ()) in
  check bool_t "bitwise repeatable" true (r1 = r2);
  check bool_t "faults fired" true
    (r1.Cellsim.Sim.reports_lost > 0
    && List.exists
         (fun s -> s.Cellsim.Sim.robustness.Cellsim.Sim.retries > 0)
         r1.Cellsim.Sim.per_scheme)

let test_sim_degradation_costs_pages () =
  (* Imperfect detection with re-paging can only increase the paging
     bill relative to the clean run on the same seed. *)
  let clean = Cellsim.Sim.run (small_config ()) in
  let faults =
    Some
      {
        Cellsim.Faults.none with
        Cellsim.Faults.detect_q = 0.7;
        retry = Cellsim.Faults.Repeat { cycles = 2; backoff = 0 };
      }
  in
  let degraded = Cellsim.Sim.run (with_faults faults (small_config ())) in
  List.iter2
    (fun c d ->
      check bool_t "degraded pages at least as many cells" true
        (d.Cellsim.Sim.cells_paged >= c.Cellsim.Sim.cells_paged))
    clean.Cellsim.Sim.per_scheme degraded.Cellsim.Sim.per_scheme

let test_sim_heavy_report_loss_survives () =
  (* Near-total report loss breaks the Area containment invariant; the
     simulator must degrade to residual misses, not crash. *)
  let faults =
    Some
      {
        Cellsim.Faults.none with
        Cellsim.Faults.report_loss = 0.95;
        report_delay = 4.0;
        detect_q = 0.9;
      }
  in
  let r = Cellsim.Sim.run (with_faults faults (small_config ())) in
  check bool_t "completed" true (r.Cellsim.Sim.total_calls > 0);
  check bool_t "reports actually lost" true (r.Cellsim.Sim.reports_lost > 0)

let test_sim_different_seeds_differ () =
  let c1 = small_config () in
  let c2 = { c1 with Cellsim.Sim.seed = 78 } in
  let r1 = Cellsim.Sim.run c1 and r2 = Cellsim.Sim.run c2 in
  check bool_t "different traffic" true
    (r1.Cellsim.Sim.total_calls <> r2.Cellsim.Sim.total_calls
    || r1.Cellsim.Sim.updates <> r2.Cellsim.Sim.updates)

let () =
  Alcotest.run "cellsim"
    [
      ( "heap",
        [
          Alcotest.test_case "ordering" `Quick test_heap_ordering;
          Alcotest.test_case "peek" `Quick test_heap_peek;
          qt prop_heap_sorts;
        ] );
      ( "hex",
        [
          Alcotest.test_case "indexing" `Quick test_hex_indexing;
          Alcotest.test_case "interior neighbors" `Quick
            test_hex_neighbors_interior;
          Alcotest.test_case "corner neighbors" `Quick test_hex_neighbors_corner;
          Alcotest.test_case "symmetry" `Quick test_hex_neighbors_symmetric;
          Alcotest.test_case "distance" `Quick test_hex_distance;
          Alcotest.test_case "triangle inequality" `Slow
            test_hex_distance_triangle;
          Alcotest.test_case "disk" `Quick test_hex_disk;
        ] );
      ( "mobility",
        [
          Alcotest.test_case "stochastic rows" `Quick
            test_mobility_random_walk_stochastic;
          Alcotest.test_case "steps to neighbors" `Quick
            test_mobility_step_moves_to_neighbor_or_stays;
          Alcotest.test_case "stationary fixed point" `Quick
            test_mobility_stationary_is_fixed_point;
          Alcotest.test_case "drift eastward" `Quick test_mobility_drift_moves_east;
          Alcotest.test_case "teleport" `Quick test_mobility_teleport;
          Alcotest.test_case "diffusion spreads" `Quick
            test_mobility_diffuse_spreads;
        ] );
      ( "profile",
        [
          Alcotest.test_case "counts" `Quick test_profile_counts;
          Alcotest.test_case "decay forgets" `Quick test_profile_decay_forgets;
          Alcotest.test_case "restriction" `Quick test_profile_distribution_over;
          Alcotest.test_case "copy" `Quick test_profile_copy_independent;
        ] );
      ( "location-area",
        [
          Alcotest.test_case "grid partition" `Quick test_la_grid_partition;
          Alcotest.test_case "crossing" `Quick test_la_crossing;
          Alcotest.test_case "single/per-cell" `Quick test_la_single_and_per_cell;
        ] );
      ( "event",
        [
          Alcotest.test_case "ordering" `Quick test_event_ordering_and_clock;
          Alcotest.test_case "stop boundary" `Quick test_event_stop_leaves_future;
          Alcotest.test_case "rejects past" `Quick test_event_rejects_past;
          Alcotest.test_case "cascade" `Quick test_event_cascade;
        ] );
      ( "traffic",
        [
          Alcotest.test_case "distinct group" `Quick test_traffic_group_distinct;
          Alcotest.test_case "interarrival" `Slow test_traffic_interarrival_mean;
          Alcotest.test_case "size ranges" `Quick test_traffic_size_ranges;
        ] );
      ( "simulation",
        [
          Alcotest.test_case "deterministic" `Slow
            test_sim_runs_and_is_deterministic;
          Alcotest.test_case "selective beats blanket" `Slow
            test_sim_selective_beats_blanket;
          Alcotest.test_case "deeper delay helps" `Slow
            test_sim_deeper_delay_pages_less;
          Alcotest.test_case "seeds differ" `Slow test_sim_different_seeds_differ;
        ] );
      ( "faults",
        [
          Alcotest.test_case "Some none ≡ None" `Slow
            test_sim_none_faults_identity;
          Alcotest.test_case "inert retry" `Slow
            test_sim_zero_faults_with_retry_identity;
          Alcotest.test_case "deterministic" `Slow
            test_sim_faulty_run_deterministic;
          Alcotest.test_case "degradation costs pages" `Slow
            test_sim_degradation_costs_pages;
          Alcotest.test_case "heavy report loss" `Slow
            test_sim_heavy_report_loss_survives;
        ] );
    ]
