(* Numerical property tests for the paper's technical inequalities —
   Propositions 4.1/4.2 and Lemmas 4.4/4.5, which carry the whole
   approximation analysis — plus tests for the Analysis module and the
   block-diagonal instance builder. *)

open Confcall

let check = Alcotest.check
let bool_t = Alcotest.bool
let float_t eps = Alcotest.float eps
let qt = QCheck_alcotest.to_alcotest

let unit_float = QCheck.map (fun n -> float_of_int n /. 10000.0) (QCheck.int_range 0 10000)

(* -------------------- Proposition 4.1 -------------------- *)
(* 1 <= x <= 2, a_i, b_i >= 0, a_i + b_i <= 1, a1 + a2 >= x - (b1 + b2)
   ==> (a1+b1)(a2+b2) >= x - 1. *)

let feasible_point m x bs raw_as =
  (* Clip a_i into [0, 1-b_i], then push mass up (toward the caps) until
     sum a >= x - sum b; always feasible since x <= m. *)
  let a = Array.mapi (fun i ai -> Stdlib.min ai (1.0 -. bs.(i))) raw_as in
  let needed = x -. Array.fold_left ( +. ) 0.0 bs in
  let current = Array.fold_left ( +. ) 0.0 a in
  if current < needed then begin
    let headroom =
      Array.mapi (fun i ai -> 1.0 -. bs.(i) -. ai) a
      |> Array.fold_left ( +. ) 0.0
    in
    if headroom > 0.0 then begin
      let lambda = Stdlib.min 1.0 ((needed -. current) /. headroom) in
      Array.iteri
        (fun i ai -> a.(i) <- ai +. (lambda *. (1.0 -. bs.(i) -. ai)))
        a
    end
  end;
  ignore m;
  a

let prop_proposition_41 =
  QCheck.Test.make ~name:"Proposition 4.1 inequality" ~count:2000
    (QCheck.quad unit_float unit_float (QCheck.pair unit_float unit_float)
       unit_float)
    (fun (b1, b2, (ra1, ra2), xt) ->
      let x = 1.0 +. xt in
      let bs = [| b1; b2 |] in
      let a = feasible_point 2 x bs [| ra1; ra2 |] in
      let sum_a = a.(0) +. a.(1) and sum_b = b1 +. b2 in
      QCheck.assume (sum_a >= x -. sum_b -. 1e-12);
      ((a.(0) +. b1) *. (a.(1) +. b2)) >= x -. 1.0 -. 1e-9)

(* -------------------- Proposition 4.2 -------------------- *)
(* 0 < s <= c, 1 <= x <= 2 ==> c - s(x-1) <= 4/3 (c - s (x/2)^2). *)

let prop_proposition_42 =
  QCheck.Test.make ~name:"Proposition 4.2 inequality" ~count:2000
    (QCheck.triple (QCheck.int_range 1 100) unit_float unit_float)
    (fun (c, st, xt) ->
      let c = float_of_int c in
      let s = st *. c in
      QCheck.assume (s > 0.0);
      let x = 1.0 +. xt in
      c -. (s *. (x -. 1.0))
      <= (4.0 /. 3.0 *. (c -. (s *. (x /. 2.0) *. (x /. 2.0)))) +. 1e-9)

(* -------------------- Lemma 4.4 -------------------- *)
(* m >= 2, m-1 <= x <= m, a_i,b_i >= 0, a_i+b_i <= 1,
   sum a >= x - sum b  ==>  prod (a_i + b_i) >= x - m + 1. *)

let prop_lemma_44 =
  QCheck.Test.make ~name:"Lemma 4.4 inequality" ~count:2000
    (QCheck.quad (QCheck.int_range 2 6)
       (QCheck.list_of_size (QCheck.Gen.return 6) unit_float)
       (QCheck.list_of_size (QCheck.Gen.return 6) unit_float)
       unit_float)
    (fun (m, bs_l, as_l, xt) ->
      let x = float_of_int (m - 1) +. xt in
      let bs = Array.sub (Array.of_list bs_l) 0 m in
      let raw_as = Array.sub (Array.of_list as_l) 0 m in
      let a = feasible_point m x bs raw_as in
      let sum_a = Array.fold_left ( +. ) 0.0 a in
      let sum_b = Array.fold_left ( +. ) 0.0 bs in
      QCheck.assume (sum_a >= x -. sum_b -. 1e-12);
      let product = ref 1.0 in
      Array.iteri (fun i ai -> product := !product *. (ai +. bs.(i))) a;
      !product >= x -. float_of_int m +. 1.0 -. 1e-9)

(* -------------------- Lemma 4.5 -------------------- *)
(* x_r in [m-1, m], s_2..s_d > 0 with sum <= c:
   c - sum_{r<=k} s_{r+1}(x_r - m + 1)
     <= e/(e-1) [c - sum s_{r+1}(x_r/m)^m - (s_{k+2}+..+s_d)/e]. *)

let prop_lemma_45 =
  QCheck.Test.make ~name:"Lemma 4.5 inequality" ~count:1000
    (QCheck.quad (QCheck.int_range 2 5) (QCheck.int_range 1 4)
       (QCheck.list_of_size (QCheck.Gen.return 8) unit_float)
       (QCheck.list_of_size (QCheck.Gen.return 8) unit_float))
    (fun (m, k, sizes_l, xs_l) ->
      let d = k + 1 + (m mod 3) in
      (* s_2 .. s_d: d-1 positive reals scaled to sum <= c. *)
      let c = 50.0 in
      let sizes =
        Array.init (d - 1) (fun i -> 0.05 +. List.nth sizes_l (i mod 8))
      in
      let total = Array.fold_left ( +. ) 0.0 sizes in
      let scale = if total > c then c /. total else 1.0 in
      let sizes = Array.map (fun s -> s *. scale) sizes in
      QCheck.assume (k <= d - 1);
      let xs =
        Array.init k (fun i ->
            float_of_int (m - 1) +. List.nth xs_l (i mod 8))
      in
      let mf = float_of_int m in
      let lhs = ref c in
      for r = 0 to k - 1 do
        lhs := !lhs -. (sizes.(r) *. (xs.(r) -. mf +. 1.0))
      done;
      let inner = ref c in
      for r = 0 to k - 1 do
        inner := !inner -. (sizes.(r) *. ((xs.(r) /. mf) ** mf))
      done;
      let tail = ref 0.0 in
      for r = k to d - 2 do
        tail := !tail +. sizes.(r)
      done;
      let e = exp 1.0 in
      let rhs = e /. (e -. 1.0) *. (!inner -. (!tail /. e)) in
      !lhs <= rhs +. 1e-9)

(* -------------------- Analysis module -------------------- *)

let test_cost_distribution_hand_computed () =
  (* m=1, p=(0.7,0.2,0.1), strategy {0}|{1,2}:
     P[cost=1] = 0.7, P[cost=3] = 0.3; mean = 1.6 = EP. *)
  let inst = Instance.create ~d:2 [| [| 0.7; 0.2; 0.1 |] |] in
  let s = Strategy.create [| [| 0 |]; [| 1; 2 |] |] in
  let dist = Analysis.cost_distribution inst s in
  check Alcotest.(array (float 1e-12)) "support" [| 1.0; 3.0 |] dist.Analysis.support;
  check Alcotest.(array (float 1e-12)) "probs" [| 0.7; 0.3 |]
    dist.Analysis.probabilities;
  check (float_t 1e-12) "mean = EP" (Strategy.expected_paging inst s)
    dist.Analysis.mean;
  (* Var = 0.7*1 + 0.3*9 - 1.6^2 = 3.4 - 2.56 = 0.84. *)
  check (float_t 1e-12) "variance" 0.84 dist.Analysis.variance

let test_distribution_mean_equals_ep_random () =
  let rng = Prob.Rng.create ~seed:501 in
  for _ = 1 to 20 do
    let inst = Instance.random_uniform_simplex rng ~m:2 ~c:9 ~d:3 in
    let s = (Greedy.solve inst).Order_dp.strategy in
    let dist = Analysis.cost_distribution inst s in
    check (float_t 1e-9) "mean = EP" (Strategy.expected_paging inst s)
      dist.Analysis.mean;
    let total = Array.fold_left ( +. ) 0.0 dist.Analysis.probabilities in
    check (float_t 1e-9) "probabilities sum to 1" 1.0 total
  done

let test_rounds_distribution_mean () =
  let rng = Prob.Rng.create ~seed:502 in
  let inst = Instance.random_uniform_simplex rng ~m:2 ~c:9 ~d:3 in
  let s = (Greedy.solve inst).Order_dp.strategy in
  let dist = Analysis.rounds_distribution inst s in
  check (float_t 1e-9) "mean = expected rounds"
    (Strategy.expected_rounds inst s)
    dist.Analysis.mean

let test_quantiles () =
  let inst = Instance.create ~d:2 [| [| 0.7; 0.2; 0.1 |] |] in
  let s = Strategy.create [| [| 0 |]; [| 1; 2 |] |] in
  let dist = Analysis.cost_distribution inst s in
  check (float_t 1e-12) "median" 1.0 (Analysis.quantile dist 0.5);
  check (float_t 1e-12) "p90" 3.0 (Analysis.quantile dist 0.9);
  check (float_t 1e-12) "p0" 1.0 (Analysis.quantile dist 0.0)

let test_frontier_monotone () =
  let rng = Prob.Rng.create ~seed:503 in
  let inst = Instance.random_zipf rng ~s:1.1 ~m:2 ~c:20 ~d:1 in
  let frontier = Analysis.delay_paging_frontier inst ~max_d:6 in
  check Alcotest.int "points" 6 (Array.length frontier);
  for i = 0 to 4 do
    let _, ep1 = frontier.(i) and _, ep2 = frontier.(i + 1) in
    check bool_t "EP non-increasing along frontier" true (ep2 <= ep1 +. 1e-9)
  done;
  let r1, ep1 = frontier.(0) in
  check (float_t 1e-9) "d=1 rounds" 1.0 r1;
  check (float_t 1e-9) "d=1 EP = c" 20.0 ep1

let test_equal_ep_different_variance () =
  (* Distribution view distinguishes strategies the expectation cannot:
     uniform single device, c = 4, d = 2: {0,1}|{2,3} and {2,3}|{0,1}
     have equal EP (3.0) but a point-reordered support. Compare instead
     singletons vs halves at d = 4 where variance differs. *)
  let inst = Instance.all_uniform ~m:1 ~c:4 ~d:4 in
  let halves = Strategy.create [| [| 0; 1 |]; [| 2; 3 |] |] in
  let ones = Strategy.singletons [| 0; 1; 2; 3 |] in
  let dh = Analysis.cost_distribution inst halves in
  let d1 = Analysis.cost_distribution inst ones in
  check bool_t "singletons cheaper on average" true
    (d1.Analysis.mean < dh.Analysis.mean);
  check bool_t "but with more spread" true
    (d1.Analysis.stddev > dh.Analysis.stddev)

(* -------------------- block_diagonal -------------------- *)

let test_block_diagonal_shape () =
  let part1 = [| [| 0.5; 0.5 |] |] in
  let part2 = [| [| 0.3; 0.3; 0.4 |]; [| 0.2; 0.2; 0.6 |] |] in
  let inst = Instance.block_diagonal ~d:2 [ part1; part2 ] in
  check Alcotest.int "m" 3 inst.Instance.m;
  check Alcotest.int "c" 5 inst.Instance.c;
  check (float_t 1e-12) "device 0 in block 1" 0.5 inst.Instance.p.(0).(0);
  check (float_t 1e-12) "device 0 zero elsewhere" 0.0 inst.Instance.p.(0).(2);
  check (float_t 1e-12) "device 1 in block 2" 0.3 inst.Instance.p.(1).(2);
  check (float_t 1e-12) "device 1 zero in block 1" 0.0 inst.Instance.p.(1).(0)

let test_block_diagonal_solvable () =
  (* Disjoint supports: with enough rounds the solver should page the
     blocks separately; EP must not exceed c. *)
  let rng = Prob.Rng.create ~seed:504 in
  let part k = [| Prob.Dist.uniform_simplex rng k |] in
  let inst = Instance.block_diagonal ~d:3 [ part 4; part 4; part 4 ] in
  let r = Greedy.solve inst in
  check bool_t "EP below c" true (r.Order_dp.expected_paging < 12.0);
  check bool_t "EP above occupied-cells bound" true
    (r.Order_dp.expected_paging >= Bounds.occupied_cells inst -. 1e-9)

let test_block_diagonal_invalid () =
  (match Instance.block_diagonal ~d:1 [] with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "empty accepted");
  match Instance.block_diagonal ~d:1 [ [| [| 0.5 |]; [| 0.3; 0.7 |] |] ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "ragged accepted"

let () =
  Alcotest.run "lemmas"
    [
      ( "paper-inequalities",
        [
          qt prop_proposition_41;
          qt prop_proposition_42;
          qt prop_lemma_44;
          qt prop_lemma_45;
        ] );
      ( "analysis",
        [
          Alcotest.test_case "hand computed" `Quick
            test_cost_distribution_hand_computed;
          Alcotest.test_case "mean = EP" `Quick
            test_distribution_mean_equals_ep_random;
          Alcotest.test_case "rounds mean" `Quick test_rounds_distribution_mean;
          Alcotest.test_case "quantiles" `Quick test_quantiles;
          Alcotest.test_case "frontier" `Quick test_frontier_monotone;
          Alcotest.test_case "variance view" `Quick
            test_equal_ep_different_variance;
        ] );
      ( "block-diagonal",
        [
          Alcotest.test_case "shape" `Quick test_block_diagonal_shape;
          Alcotest.test_case "solvable" `Quick test_block_diagonal_solvable;
          Alcotest.test_case "invalid" `Quick test_block_diagonal_invalid;
        ] );
    ]
