(* Self-healing runtime suite (DESIGN §11).

   Pins the recovery machinery this repository grew around the chaos
   seam: an injected domain death fails exactly one task while the pool
   respawns the lane with [active_domains] accounting kept exact; the
   watchdog escalates stuck tasks (cooperative cancel, then lane
   poison); the journal skips checksum-failed lines instead of trusting
   them; the serve cache is a bounded LRU whose journal failures cost
   one entry's persistence; and — the flip side — the seam compiled in
   but not firing is invisible, down to journal bytes. *)

open Confcall

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int
let tmp name = Filename.temp_file ("confcall_recovery_" ^ name) ".journal"
let read_file path = In_channel.with_open_bin path In_channel.input_all

let write_file path s =
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc s)

(* ---------------- faultpoint spec grammar ---------------- *)

let test_parse_ok () =
  (match Faultpoint.parse "" with
   | Ok [] -> ()
   | _ -> Alcotest.fail "empty spec must parse to no entries");
  (match Faultpoint.parse "pool.task.crash=0.25" with
   | Ok [ ("pool.task.crash", p, _) ] -> check bool_t "prob" true (p = 0.25)
   | _ -> Alcotest.fail "single entry");
  (match Faultpoint.parse " pool.task.delay = 0.1 @ 25 " with
   | Ok [ ("pool.task.delay", p, prm) ] ->
     check bool_t "prob with spaces" true (p = 0.1);
     check bool_t "explicit param" true (prm = 25.0)
   | _ -> Alcotest.fail "param entry");
  (match Faultpoint.parse "journal.append.short=0.2" with
   | Ok [ (_, _, prm) ] ->
     check bool_t "short points default to half the write" true (prm = 0.5)
   | _ -> Alcotest.fail "default param");
  (match Faultpoint.parse "journal.fsync=0.1,cache.store=0.3" with
   | Ok [ ("journal.fsync", _, _); ("cache.store", _, _) ] -> ()
   | _ -> Alcotest.fail "entries keep spec order");
  match Faultpoint.parse "*=0.02" with
  | Ok entries ->
    check int_t "wildcard arms the whole catalogue"
      (List.length Faultpoint.catalogue)
      (List.length entries);
    List.iter
      (fun (_, p, _) -> check bool_t "wildcard prob" true (p = 0.02))
      entries
  | Error e -> Alcotest.fail e

let test_parse_errors () =
  List.iter
    (fun spec ->
      match Faultpoint.parse spec with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "spec %S must be rejected" spec)
    [
      "nonsense";
      "no.such.point=0.5";
      "pool.task.crash=1.5";
      "pool.task.crash=-0.1";
      "pool.task.crash=nan";
      "pool.task.delay=0.1@-3";
      "pool.task.crash";
      "=0.5";
      "*=0.1@bad";
    ]

let test_arm_probe_disable () =
  Fun.protect ~finally:Faultpoint.disable (fun () ->
      Faultpoint.configure_exn ~seed:7 "journal.fsync=1.0";
      check bool_t "armed" true (Faultpoint.on ());
      (match Faultpoint.hit "journal.fsync" with
       | () -> Alcotest.fail "probability 1.0 must fire"
       | exception Faultpoint.Injected p ->
         check bool_t "payload is the point name" true (p = "journal.fsync"));
      check int_t "fired counted" 1 (Faultpoint.fired "journal.fsync");
      (* armed seam, unarmed catalogued point: never fires *)
      Faultpoint.hit "pool.task.crash";
      (* a mistyped site must fail loud while the seam is on *)
      (match Faultpoint.hit "no.such.point" with
       | () -> Alcotest.fail "unknown point must raise while armed"
       | exception Invalid_argument _ -> ());
      check int_t "total fired" 1 (Faultpoint.total_fired ());
      check bool_t "fired_all" true
        (Faultpoint.fired_all () = [ ("journal.fsync", 1) ]);
      Faultpoint.disable ();
      check bool_t "off" false (Faultpoint.on ());
      (* off means off: probes are no-ops even for unknown names *)
      Faultpoint.hit "no.such.point";
      check bool_t "short probe off" true
        (Faultpoint.short "journal.append.short" = None);
      check int_t "fired counters survive disable" 1
        (Faultpoint.fired "journal.fsync");
      (* probability-zero entries arm nothing *)
      Faultpoint.configure_exn "pool.task.crash=0.0";
      check bool_t "all-zero spec stays off" false (Faultpoint.on ()))

(* ---------------- pool: injected domain death ---------------- *)

let test_killed_fails_only_that_task () =
  Exec.Pool.with_pool ~domains:4 (fun pool ->
      let f i =
        if i = 5 then raise (Exec.Pool.Killed (Failure "injected"))
        else i * i
      in
      let out = Exec.Pool.run_all pool f (Array.init 12 Fun.id) in
      Array.iteri
        (fun i r ->
          match r with
          | Ok v when i <> 5 -> check int_t "sibling result" (i * i) v
          | Error (Failure m) when i = 5 ->
            check bool_t "failure payload" true (m = "injected")
          | _ -> Alcotest.failf "slot %d has the wrong outcome" i)
        out;
      (* the pool keeps serving after the death *)
      check bool_t "pool serves after the crash" true
        (Exec.Pool.map pool succ (Array.init 8 Fun.id) = Array.init 8 succ))

let test_map_reraises_lowest_killed () =
  Exec.Pool.with_pool ~domains:4 (fun pool ->
      match
        Exec.Pool.map pool
          (fun i ->
            if i = 2 || i = 6 then
              raise (Exec.Pool.Killed (Failure (string_of_int i)))
            else i)
          (Array.init 10 Fun.id)
      with
      | _ -> Alcotest.fail "expected Failure"
      | exception Failure m ->
        check bool_t "lowest-indexed death surfaces" true (m = "2"))

let test_killed_sequential_pool () =
  Exec.Pool.with_pool ~domains:1 (fun pool ->
      let out =
        Exec.Pool.run_all pool
          (fun i -> if i = 1 then raise (Exec.Pool.Killed Exit) else i)
          [| 0; 1; 2 |]
      in
      check bool_t "size-1 pool contains the crash per element" true
        (match out with
         | [| Ok 0; Error Exit; Ok 2 |] -> true
         | _ -> false))

(* Worker deaths must respawn the lane and keep [active_domains] exact.
   The crashes are pinned to worker domains — a death on the caller's
   lane recovers in place and respawns nothing — and batches run until
   at least 3 deaths have been injected. *)
let test_respawn_exact_accounting () =
  let before = Exec.Pool.active_domains () in
  Exec.Pool.with_pool ~domains:4 (fun pool ->
      let main = Domain.self () in
      let attempts = ref 0 in
      while Exec.Pool.respawns pool < 3 && !attempts < 200 do
        incr attempts;
        let out =
          Exec.Pool.run_all pool
            (fun i ->
              Thread.delay 0.002;
              if Domain.self () <> main then
                raise (Exec.Pool.Killed (Failure "die"))
              else i)
            (Array.init 16 Fun.id)
        in
        (* every slot is terminal: a caller-lane result or the death *)
        Array.iter
          (function
            | Ok _ | Error (Failure _) -> ()
            | Error e ->
              Alcotest.failf "unexpected error: %s" (Printexc.to_string e))
          out
      done;
      check bool_t "at least 3 worker deaths injected" true
        (Exec.Pool.respawns pool >= 3);
      (* each replacement joins its predecessor, so the global count
         settles back to exactly this pool's 3 workers *)
      let deadline = Unix.gettimeofday () +. 5.0 in
      while
        Exec.Pool.active_domains () <> before + 3
        && Unix.gettimeofday () < deadline
      do
        Thread.delay 0.01
      done;
      check int_t "active domains exact after respawns" (before + 3)
        (Exec.Pool.active_domains ());
      check bool_t "healed pool serves" true
        (Exec.Pool.map pool succ (Array.init 32 Fun.id) = Array.init 32 succ));
  check int_t "no leaked domains after join" before
    (Exec.Pool.active_domains ())

(* ---------------- watchdog escalation ---------------- *)

let test_watchdog_cancels_stuck_task () =
  Exec.Pool.with_pool ~domains:2 (fun pool ->
      let cancelled = Atomic.make false in
      let stuck0 = Exec.Pool.stuck_tasks pool in
      let guard _ =
        Some
          Exec.Pool.
            {
              deadline_s = Unix.gettimeofday () +. 0.02;
              grace_s = 0.02;
              cancel = (fun () -> Atomic.set cancelled true);
            }
      in
      let out =
        Exec.Pool.run_all pool ~guard
          (fun () ->
            (* cooperative: spins until its cancel token fires *)
            let give_up = Unix.gettimeofday () +. 5.0 in
            while
              (not (Atomic.get cancelled)) && Unix.gettimeofday () < give_up
            do
              Thread.delay 0.002
            done;
            "done")
          [| () |]
      in
      check bool_t "stuck task still publishes" true (out = [| Ok "done" |]);
      check bool_t "watchdog fired the cancel" true (Atomic.get cancelled);
      check bool_t "stuck task counted" true
        (Exec.Pool.stuck_tasks pool > stuck0))

(* Past the second grace window the watchdog poisons the worker's lane,
   forcing a domain recycle once the stubborn task lets go. Poison only
   applies to worker lanes (the caller cannot be respawned), so the
   stubborn task bails unless it landed on a worker, retrying until it
   does. *)
let test_watchdog_poisons_lane () =
  Exec.Pool.with_pool ~domains:2 (fun pool ->
      let main = Domain.self () in
      let landed = ref false in
      let tries = ref 0 in
      while (not !landed) && !tries < 50 do
        incr tries;
        let guard _ =
          Some
            Exec.Pool.
              {
                deadline_s = Unix.gettimeofday ();
                grace_s = 0.02;
                cancel = ignore (* a task that ignores its cancel *);
              }
        in
        let r0 = Exec.Pool.respawns pool in
        let out =
          Exec.Pool.run_all pool ~guard
            (fun i ->
              if Domain.self () <> main then begin
                Thread.delay 0.2 (* well past deadline + 2 * grace *);
                landed := true
              end
              else Thread.delay 0.01;
              i)
            [| 0; 1 |]
        in
        check bool_t "both tasks complete" true
          (Array.for_all (function Ok _ -> true | Error _ -> false) out);
        if !landed then begin
          let deadline = Unix.gettimeofday () +. 5.0 in
          while
            Exec.Pool.respawns pool <= r0
            && Unix.gettimeofday () < deadline
          do
            Thread.delay 0.01
          done;
          check bool_t "poisoned lane respawned its domain" true
            (Exec.Pool.respawns pool > r0)
        end
      done;
      check bool_t "stubborn task landed on a worker" true !landed)

(* ---------------- journal: corruption and recovery ---------------- *)

let test_journal_mixed_corruption () =
  let path = tmp "mixed" in
  (* a legacy line (no checksum), a good line, a bit-flipped line whose
     checksum no longer matches, another good line, and a torn tail *)
  write_file path
    ("a\t1\n" ^ "b\t2\tcrc:ad072c95\n"
   ^ "c\t9\tcrc:dbc27634\n" (* crc is for "c\t3": payload flipped *)
   ^ "d\t4\tcrc:40e9f512\n" ^ "e\t5\tcrc:362" (* torn mid-write *));
  let j = Journal.load_or_create path in
  check bool_t "corrupt line skipped; good and legacy loaded" true
    (Journal.entries j = [ ("a", "1"); ("b", "2"); ("d", "4") ]);
  check int_t "corrupt line counted" 1 (Journal.corrupt_lines j);
  check bool_t "journal not broken" false (Journal.broken j);
  check bool_t "skipped item is re-doable" false (Journal.completed j "c");
  (* the torn tail was physically truncated, so the re-done item
     appends cleanly, with its checksum *)
  Journal.record j ~id:"e" ~payload:"5";
  Journal.close j;
  check bool_t "file after recovery and re-append" true
    (read_file path
    = "a\t1\nb\t2\tcrc:ad072c95\nc\t9\tcrc:dbc27634\nd\t4\tcrc:40e9f512\n\
       e\t5\tcrc:362cafb3\n");
  check bool_t "read_back skips the corrupt line the same way" true
    (Journal.read_back path
    = [ ("a", "1"); ("b", "2"); ("d", "4"); ("e", "5") ]);
  Sys.remove path

let test_journal_legacy_loads () =
  let path = tmp "legacy" in
  write_file path "x\tpayload one\ny\tpayload\ttwo\n";
  let j = Journal.load_or_create path in
  check bool_t "legacy entries load unverified" true
    (Journal.entries j = [ ("x", "payload one"); ("y", "payload\ttwo") ]);
  check int_t "no corrupt lines" 0 (Journal.corrupt_lines j);
  Journal.close j;
  Sys.remove path

(* ---------------- serve cache: bounded LRU ---------------- *)

let test_cache_lru_eviction () =
  let c = Serve.Cache.create ~max_entries:3 () in
  Serve.Cache.store c ~key:"k1" ~payload:"p1";
  Serve.Cache.store c ~key:"k2" ~payload:"p2";
  Serve.Cache.store c ~key:"k3" ~payload:"p3";
  check int_t "at cap" 3 (Serve.Cache.entries c);
  (* touch k1 so k2 becomes least-recently-used *)
  check bool_t "find touches" true (Serve.Cache.find c ~key:"k1" = Some "p1");
  Serve.Cache.store c ~key:"k4" ~payload:"p4";
  check int_t "still at cap" 3 (Serve.Cache.entries c);
  check int_t "one eviction" 1 (Serve.Cache.evictions c);
  check bool_t "LRU entry (k2) evicted" true
    (Serve.Cache.find c ~key:"k2" = None);
  check bool_t "touched key survives" true
    (Serve.Cache.find c ~key:"k1" = Some "p1");
  check bool_t "newest present" true
    (Serve.Cache.find c ~key:"k4" = Some "p4");
  (* a duplicate store is a no-op, not an eviction *)
  Serve.Cache.store c ~key:"k4" ~payload:"other";
  check bool_t "first writer wins" true
    (Serve.Cache.find c ~key:"k4" = Some "p4");
  check int_t "no extra eviction" 1 (Serve.Cache.evictions c);
  Serve.Cache.close c

let test_cache_journal_evict_restore () =
  let path = tmp "cache" in
  Sys.remove path;
  let c = Serve.Cache.create ~path ~max_entries:2 () in
  Serve.Cache.store c ~key:"x" ~payload:"1";
  Serve.Cache.store c ~key:"y" ~payload:"2";
  Serve.Cache.store c ~key:"z" ~payload:"3" (* evicts x in memory *);
  check bool_t "x evicted" true (Serve.Cache.find c ~key:"x" = None);
  (* re-storing an evicted key must not journal a duplicate id — the
     reload below would refuse to load a double-appended journal *)
  Serve.Cache.store c ~key:"x" ~payload:"1";
  check bool_t "x resident again" true
    (Serve.Cache.find c ~key:"x" = Some "1");
  check int_t "no journal failures" 0 (Serve.Cache.store_errors c);
  Serve.Cache.close c;
  let c2 = Serve.Cache.create ~path ~max_entries:10 () in
  check int_t "every journalled entry loads once" 3 (Serve.Cache.entries c2);
  check bool_t "payload intact across restart" true
    (Serve.Cache.find c2 ~key:"x" = Some "1");
  Serve.Cache.close c2;
  (* an over-cap reload keeps the newest records *)
  let c3 = Serve.Cache.create ~path ~max_entries:2 () in
  check int_t "cap respected on load" 2 (Serve.Cache.entries c3);
  check bool_t "newest record resident" true
    (Serve.Cache.find c3 ~key:"z" = Some "3");
  check bool_t "load evictions counted" true (Serve.Cache.evictions c3 >= 1);
  Serve.Cache.close c3;
  Sys.remove path

let test_cache_store_failure_absorbed () =
  Fun.protect ~finally:Faultpoint.disable (fun () ->
      let path = tmp "storefail" in
      Sys.remove path;
      let c = Serve.Cache.create ~path ~max_entries:8 () in
      Serve.Cache.store c ~key:"ok" ~payload:"1";
      Faultpoint.configure_exn "cache.store=1.0";
      Serve.Cache.store c ~key:"doomed" ~payload:"2";
      Faultpoint.disable ();
      check int_t "failure absorbed and counted" 1
        (Serve.Cache.store_errors c);
      check bool_t "in-memory entry stands" true
        (Serve.Cache.find c ~key:"doomed" = Some "2");
      Serve.Cache.close c;
      (* the failed store never reached the journal *)
      let c2 = Serve.Cache.create ~path ~max_entries:8 () in
      check int_t "only the clean store persisted" 1 (Serve.Cache.entries c2);
      check bool_t "clean entry loads" true
        (Serve.Cache.find c2 ~key:"ok" = Some "1");
      Serve.Cache.close c2;
      Sys.remove path)

(* ---------------- chaos-off differential ---------------- *)

let winner_key (r : Runner.run_report) =
  match r.Runner.winner with
  | None -> None
  | Some (spec, o) ->
    Some (Solver.spec_to_string spec, o.Solver.expected_paging)

(* The seam compiled in but not firing must be invisible: solver
   winners (sequential and raced, the e25 determinism legs) and
   journalled sweep bytes are identical whether the seam is disabled
   or armed at a point these paths never probe. *)
let test_chaos_off_byte_identity () =
  Fun.protect ~finally:Faultpoint.disable (fun () ->
      let instances =
        let rng = Prob.Rng.create ~seed:90210 in
        List.init 12 (fun _ ->
            let m = 1 + Prob.Rng.int rng 3 in
            let c = 2 + Prob.Rng.int rng 10 in
            let d = 1 + Prob.Rng.int rng (min 4 c) in
            Instance.random_uniform_simplex rng ~m ~c ~d)
      in
      (* heuristic-only chain: the point is seam invisibility, not
         solver coverage (test_parallel owns the full differential) *)
      let chain = Solver.[ Local_search; Greedy; Page_all ] in
      let solver_leg () =
        Exec.Pool.with_pool ~domains:4 (fun pool ->
            List.map
              (fun inst ->
                let seq = Runner.run ~chain inst in
                let par = Runner.run ~chain ~pool inst in
                (winner_key seq, winner_key par))
              instances)
      in
      let journal_leg () =
        let path = tmp "chaosoff" in
        Sys.remove path;
        let j = Journal.load_or_create path in
        for k = 1 to 10 do
          Journal.record j
            ~id:(Printf.sprintf "item%d" k)
            ~payload:(string_of_int (k * k))
        done;
        Journal.close j;
        let bytes = read_file path in
        Sys.remove path;
        bytes
      in
      Faultpoint.disable ();
      let off = solver_leg () in
      let journal_off = journal_leg () in
      (* armed at a serve-only point: the solver and journal paths draw
         nothing, so their outputs must not move *)
      Faultpoint.configure_exn ~seed:3 "serve.accept=1.0";
      check bool_t "solver winners identical with seam armed elsewhere" true
        (solver_leg () = off);
      check bool_t "journal bytes identical with seam armed elsewhere" true
        (journal_leg () = journal_off);
      List.iter
        (fun (seq, par) -> check bool_t "raced = sequential" true (seq = par))
        off)

let () =
  Alcotest.run "recovery"
    [
      ( "faultpoint",
        [
          Alcotest.test_case "spec grammar accepts" `Quick test_parse_ok;
          Alcotest.test_case "spec grammar rejects" `Quick test_parse_errors;
          Alcotest.test_case "arm, probe, disable" `Quick
            test_arm_probe_disable;
        ] );
      ( "pool-recovery",
        [
          Alcotest.test_case "killed task fails alone" `Quick
            test_killed_fails_only_that_task;
          Alcotest.test_case "map re-raises lowest death" `Quick
            test_map_reraises_lowest_killed;
          Alcotest.test_case "size-1 containment" `Quick
            test_killed_sequential_pool;
          Alcotest.test_case "respawn keeps accounting exact" `Quick
            test_respawn_exact_accounting;
        ] );
      ( "watchdog",
        [
          Alcotest.test_case "stuck task cancelled" `Quick
            test_watchdog_cancels_stuck_task;
          Alcotest.test_case "stubborn task poisons its lane" `Quick
            test_watchdog_poisons_lane;
        ] );
      ( "journal-integrity",
        [
          Alcotest.test_case "mixed corruption recovered" `Quick
            test_journal_mixed_corruption;
          Alcotest.test_case "legacy journal loads" `Quick
            test_journal_legacy_loads;
        ] );
      ( "cache-lru",
        [
          Alcotest.test_case "cap and eviction order" `Quick
            test_cache_lru_eviction;
          Alcotest.test_case "journal survives evict and restore" `Quick
            test_cache_journal_evict_restore;
          Alcotest.test_case "store failure absorbed" `Quick
            test_cache_store_failure_absorbed;
        ] );
      ( "chaos-off",
        [
          Alcotest.test_case "byte identity with seam disabled" `Quick
            test_chaos_off_byte_identity;
        ] );
    ]
