(* Tests for the QAP substrate, the §5.1 Conference-Call-to-QAP encoding,
   and the exact-rational DP. *)

module Q = Numeric.Rational

open Confcall

let check = Alcotest.check
let bool_t = Alcotest.bool
let float_t eps = Alcotest.float eps
let qt = QCheck_alcotest.to_alcotest

(* -------------------- QAP basics -------------------- *)

let small_qap () =
  Qap.create
    [| [| 1.0; 2.0; 0.0 |]; [| 0.0; 1.0; 3.0 |]; [| 1.0; 0.0; 1.0 |] |]
    [| [| 2.0; 0.0; 1.0 |]; [| 1.0; 1.0; 0.0 |]; [| 0.0; 2.0; 2.0 |] |]

let test_qap_objective_hand_computed () =
  (* 1x1: objective = a00 * b00. *)
  let t = Qap.create [| [| 3.0 |] |] [| [| 5.0 |] |] in
  check (float_t 1e-12) "1x1" 15.0 (Qap.objective t [| 0 |])

let test_qap_objective_permutation_dependence () =
  let t = small_qap () in
  let id = Qap.objective t [| 0; 1; 2 |] in
  let swapped = Qap.objective t [| 1; 0; 2 |] in
  check bool_t "different permutations differ" true (id <> swapped)

let test_qap_rejects_bad_perm () =
  let t = small_qap () in
  List.iter
    (fun perm ->
      match Qap.objective t perm with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail "bad permutation accepted")
    [ [| 0; 1 |]; [| 0; 0; 1 |]; [| 0; 1; 3 |] ]

let test_qap_swap_delta_consistency () =
  (* local_search must end at a 2-swap local max whose objective matches
     a from-scratch evaluation. *)
  let rng = Prob.Rng.create ~seed:401 in
  for _ = 1 to 20 do
    let n = 4 + Prob.Rng.int rng 4 in
    let random_matrix () =
      Array.init n (fun _ -> Array.init n (fun _ -> Prob.Rng.unit_float rng))
    in
    let t = Qap.create (random_matrix ()) (random_matrix ()) in
    let start = Array.init n (fun i -> i) in
    Prob.Rng.shuffle rng start;
    let perm, value, _ = Qap.local_search t ~start in
    check (float_t 1e-9) "value consistent" (Qap.objective t perm) value;
    (* No single swap improves. *)
    for x = 0 to n - 1 do
      for y = x + 1 to n - 1 do
        let p2 = Array.copy perm in
        let tmp = p2.(x) in
        p2.(x) <- p2.(y);
        p2.(y) <- tmp;
        check bool_t "local max" true (Qap.objective t p2 <= value +. 1e-9)
      done
    done
  done

let test_qap_local_search_reaches_exhaustive_often () =
  let rng = Prob.Rng.create ~seed:402 in
  let hits = ref 0 in
  for _ = 1 to 10 do
    let n = 5 in
    let random_matrix () =
      Array.init n (fun _ -> Array.init n (fun _ -> Prob.Rng.unit_float rng))
    in
    let t = Qap.create (random_matrix ()) (random_matrix ()) in
    let _, annealed = Qap.anneal t rng ~steps:3000 ~t0:1.0 ~cooling:0.999 in
    let _, best = Qap.exhaustive t in
    check bool_t "never above optimum" true (annealed <= best +. 1e-9);
    if annealed >= best -. 1e-9 then incr hits
  done;
  check bool_t "usually optimal at n=5" true (!hits >= 8)

(* -------------------- CC(m=2) <-> QAP encoding -------------------- *)

let random_m2 rng c d = Instance.random_uniform_simplex rng ~m:2 ~c ~d

let perm_of_strategy ~c strategy =
  (* Cells of round r occupy that round's slot block, in group order. *)
  let perm = Array.make c 0 in
  let slot = ref 0 in
  Array.iter
    (fun group ->
      Array.iter
        (fun cell ->
          perm.(cell) <- !slot;
          incr slot)
        group)
    (Strategy.groups strategy);
  perm

let prop_qap_objective_equals_ep =
  QCheck.Test.make
    ~name:"QAP objective = c - EP for every m=2 strategy" ~count:100
    (QCheck.int_range 1 1000000) (fun seed ->
      let rng = Prob.Rng.create ~seed in
      let c = 4 + Prob.Rng.int rng 5 in
      let d = 2 + Prob.Rng.int rng 2 in
      let d = Stdlib.min d c in
      let inst = random_m2 rng c d in
      (* Random strategy with d groups. *)
      let order = Array.init c (fun j -> j) in
      Prob.Rng.shuffle rng order;
      let sizes =
        let remaining = c - d in
        let extra = Array.make d 0 in
        for _ = 1 to remaining do
          let r = Prob.Rng.int rng d in
          extra.(r) <- extra.(r) + 1
        done;
        Array.map (fun e -> 1 + e) extra
      in
      let strategy = Strategy.of_sizes ~order ~sizes in
      let qap = Qap.of_conference inst ~sizes in
      let perm = perm_of_strategy ~c strategy in
      let via_qap =
        Qap.ep_of_objective inst (Qap.objective qap perm)
      in
      abs_float (via_qap -. Strategy.expected_paging inst strategy) < 1e-9)

let test_qap_solver_matches_exhaustive () =
  let rng = Prob.Rng.create ~seed:403 in
  for _ = 1 to 8 do
    let inst = random_m2 rng 6 2 in
    let _, qap_ep = Qap.solve_conference_m2 ~rng inst in
    let opt = (Optimal.exhaustive inst).Optimal.expected_paging in
    check bool_t "never better than optimum" true (qap_ep >= opt -. 1e-9);
    check bool_t "close to optimum" true (qap_ep <= opt +. 0.15)
  done

let test_qap_solver_escapes_weight_order () =
  (* On the §4.3 instance the QAP route (unconstrained by cell order)
     should find the true optimum 317/49, beating the heuristic. *)
  let seventh = 1.0 /. 7.0 in
  let p1 = [| 2.0 /. 7.0; seventh; seventh; seventh; seventh; seventh; 0.0; 0.0 |] in
  let p2 = [| 0.0; seventh; seventh; seventh; seventh; seventh; seventh; seventh |] in
  let inst = Instance.create ~d:2 [| p1; p2 |] in
  let strategy, ep = Qap.solve_conference_m2 inst in
  check (float_t 1e-9) "optimum via QAP" (317.0 /. 49.0) ep;
  check bool_t "valid strategy" true (Strategy.validate ~c:8 strategy = Ok ())

let test_qap_solver_requires_m2 () =
  let inst = Instance.all_uniform ~m:3 ~c:4 ~d:2 in
  match Qap.solve_conference_m2 inst with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "m=3 accepted"

(* -------------------- Exact-rational DP -------------------- *)

let lb_instance_exact () =
  let s = Q.of_ints 1 7 and z = Q.zero in
  Instance.Exact.create ~d:2
    [|
      [| Q.of_ints 2 7; s; s; s; s; s; z; z |];
      [| z; s; s; s; s; s; s; s |];
    |]

let test_exact_dp_heuristic_is_320_49 () =
  let r = Exact_dp.greedy (lb_instance_exact ()) in
  check bool_t "exact heuristic EP" true
    (Q.equal r.Exact_dp.expected_paging (Q.of_ints 320 49));
  check Alcotest.(array int) "first group" [| 0; 1; 2; 3; 4 |]
    (Strategy.groups r.Exact_dp.strategy).(0)

let test_exact_dp_matches_float_dp () =
  (* On random rational instances the exact DP and the float DP must
     agree (away from ties). *)
  let rng = Prob.Rng.create ~seed:404 in
  for _ = 1 to 10 do
    let c = 6 and d = 3 and m = 2 in
    (* Random rational rows with denominator 97 (prime, no exact float
       representation -> exercises rounding). *)
    let rows_q =
      Array.init m (fun _ ->
          let cuts = Array.init c (fun _ -> 1 + Prob.Rng.int rng 30) in
          let total = Array.fold_left ( + ) 0 cuts in
          Array.map (fun v -> Q.of_ints v total) cuts)
    in
    let exact = Instance.Exact.create ~d rows_q in
    let inst = Instance.Exact.to_float exact in
    let er = Exact_dp.greedy exact in
    let fr = Greedy.solve inst in
    check (float_t 1e-6) "EP agreement"
      (Q.to_float er.Exact_dp.expected_paging)
      fr.Order_dp.expected_paging
  done

let test_exact_dp_consistent_with_strategy_eval () =
  let exact = lb_instance_exact () in
  let r = Exact_dp.greedy exact in
  let direct = Strategy.expected_paging_exact exact r.Exact_dp.strategy in
  check bool_t "DP value = strategy evaluation" true
    (Q.equal direct r.Exact_dp.expected_paging)

let test_exact_dp_objectives () =
  let exact = lb_instance_exact () in
  let all = (Exact_dp.greedy exact).Exact_dp.expected_paging in
  let any =
    (Exact_dp.greedy ~objective:Objective.Find_any exact).Exact_dp.expected_paging
  in
  check bool_t "find-any cheaper" true (Q.compare any all <= 0)

let () =
  Alcotest.run "qap"
    [
      ( "qap-core",
        [
          Alcotest.test_case "objective 1x1" `Quick test_qap_objective_hand_computed;
          Alcotest.test_case "permutation dependence" `Quick
            test_qap_objective_permutation_dependence;
          Alcotest.test_case "rejects bad perm" `Quick test_qap_rejects_bad_perm;
          Alcotest.test_case "swap delta / local max" `Slow
            test_qap_swap_delta_consistency;
          Alcotest.test_case "annealing near-optimal" `Slow
            test_qap_local_search_reaches_exhaustive_often;
        ] );
      ( "cc-to-qap",
        [
          qt prop_qap_objective_equals_ep;
          Alcotest.test_case "matches exhaustive" `Slow
            test_qap_solver_matches_exhaustive;
          Alcotest.test_case "finds 317/49" `Quick
            test_qap_solver_escapes_weight_order;
          Alcotest.test_case "requires m=2" `Quick test_qap_solver_requires_m2;
        ] );
      ( "exact-dp",
        [
          Alcotest.test_case "heuristic = 320/49 exactly" `Quick
            test_exact_dp_heuristic_is_320_49;
          Alcotest.test_case "matches float DP" `Quick test_exact_dp_matches_float_dp;
          Alcotest.test_case "consistent with evaluation" `Quick
            test_exact_dp_consistent_with_strategy_eval;
          Alcotest.test_case "objectives" `Quick test_exact_dp_objectives;
        ] );
    ]
