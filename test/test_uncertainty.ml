(* Tests for the uncertainty layer: certified EP bounds (Uncertainty)
   and the directed-rounding intervals (Numeric.Interval) they rest on.

   The heavy lifting is a test-local exact-rational oracle. On dyadic
   instances (all entries multiples of 1/64, dyadic ε and tv) every
   float the library touches is exactly representable, so the float
   results must agree with the rational oracle to within interval
   round-off — this validates the canonical-adversary construction
   against the independent δ⁻/δ⁺ characterization from the .mli. *)

open Confcall
module Q = Numeric.Rational
module I = Numeric.Interval

let qt = QCheck_alcotest.to_alcotest
let check = Alcotest.check
let float_t eps = Alcotest.float eps

(* -------------------- generators -------------------- *)

(* Random strategy over [c] cells with at most [d] rounds: shuffled
   order, random split into non-empty groups. *)
let random_strategy rng ~c ~d =
  let order = Array.init c (fun j -> j) in
  Prob.Rng.shuffle rng order;
  let t = 1 + Prob.Rng.int rng (Int.min d c) in
  let sizes = Array.make t 1 in
  for _ = 1 to c - t do
    let r = Prob.Rng.int rng t in
    sizes.(r) <- sizes.(r) + 1
  done;
  Strategy.of_sizes ~order ~sizes

let random_objective rng ~m =
  match Prob.Rng.int rng 3 with
  | 0 -> Objective.Find_all
  | 1 -> Objective.Find_any
  | _ -> Objective.Find_at_least (1 + Prob.Rng.int rng m)

(* Integer weight rows summing to [den]; dyadic in float for den = 64. *)
let dyadic_weights rng ~m ~c ~den =
  Array.init m (fun _ ->
      let w = Array.make c 0 in
      for _ = 1 to den do
        let j = Prob.Rng.int rng c in
        w.(j) <- w.(j) + 1
      done;
      w)

(* -------------------- rational oracle -------------------- *)

(* Extremal prefix masses per device and round, straight from the
   δ⁻/δ⁺ formulas (no shared code with Uncertainty.perturb_row):
     worst:  m(r) − min(Σ_{j∈pre} min(ε,p_j), Σ_{j∉pre} min(ε,1−p_j), tv)
     best:   m(r) + min(Σ_{j∉pre} min(ε,p_j), Σ_{j∈pre} min(ε,1−p_j), tv) *)
let oracle_masses ~worst ~eps ~tv row groups =
  let qmin = Q.min in
  let cap_tv d = match tv with None -> d | Some t -> qmin d t in
  let give = Array.map (fun p -> qmin eps p) row in
  let absorb = Array.map (fun p -> qmin eps Q.(one - p)) row in
  let total_give = Q.sum (Array.to_list give) in
  let total_abs = Q.sum (Array.to_list absorb) in
  let pre_mass = ref Q.zero
  and pre_give = ref Q.zero
  and pre_abs = ref Q.zero in
  Array.map
    (fun cells ->
       Array.iter
         (fun j ->
            pre_mass := Q.(!pre_mass + row.(j));
            pre_give := Q.(!pre_give + give.(j));
            pre_abs := Q.(!pre_abs + absorb.(j)))
         cells;
       if worst then
         let d = cap_tv (qmin !pre_give Q.(total_abs - !pre_abs)) in
         Q.(!pre_mass - d)
       else
         let d = cap_tv (qmin Q.(total_give - !pre_give) !pre_abs) in
         Q.(!pre_mass + d))
    groups

(* Objective success probability on exact per-device masses. *)
let oracle_success objective masses =
  match objective with
  | Objective.Find_all -> Q.product (Array.to_list masses)
  | Objective.Find_any ->
    Q.(one - Q.product (Array.to_list (Array.map (fun p -> one - p) masses)))
  | Objective.Find_at_least k ->
    let m = Array.length masses in
    if k <= 0 then Q.one
    else if k > m then Q.zero
    else begin
      (* Poisson-binomial tail via the standard DP *)
      let dp = Array.make (m + 1) Q.zero in
      dp.(0) <- Q.one;
      Array.iteri
        (fun i p ->
           let q = Q.(one - p) in
           for j = i + 1 downto 1 do
             let prev = dp.(j - 1) in
             dp.(j) <- Q.((dp.(j) * q) + (prev * p))
           done;
           dp.(0) <- Q.(dp.(0) * q))
        masses;
      Q.sum (Array.to_list (Array.sub dp k (m - k + 1)))
    end

(* Extremal EP in Q: c − Σ_{r=0}^{t−2} |S_{r+2}|·F_r. *)
let oracle_ep ~worst ~objective ~eps ~tv rows_q strat =
  let groups = Strategy.groups strat in
  let sizes = Strategy.sizes strat in
  let t = Array.length sizes in
  let c =
    Array.fold_left (fun acc g -> acc + Array.length g) 0 groups
  in
  let device_masses =
    Array.map (fun row -> oracle_masses ~worst ~eps ~tv row groups) rows_q
  in
  let acc = ref (Q.of_int c) in
  for r = 0 to t - 2 do
    let masses = Array.map (fun dm -> dm.(r)) device_masses in
    let f = oracle_success objective masses in
    let size = Q.of_int sizes.(r + 1) in
    acc := Q.(!acc - (size * f))
  done;
  !acc

(* -------------------- oracle vs library -------------------- *)

(* On dyadic instances robust_ep / optimistic_ep must match the oracle
   to float round-off, and ep_bounds must enclose both oracle extremes
   tightly (same formulas, one-ulp-per-op widening). *)
let prop_robust_matches_rational_oracle =
  QCheck.Test.make ~name:"robust/optimistic EP match exact rational oracle"
    ~count:120
    (QCheck.int_range 0 999999)
    (fun seed ->
       let rng = Prob.Rng.create ~seed in
       let den = 64 in
       let m = 1 + Prob.Rng.int rng 3 and c = 2 + Prob.Rng.int rng 6 in
       let d = 2 + Prob.Rng.int rng (c - 1) in
       let w = dyadic_weights rng ~m ~c ~den in
       let rows_q =
         Array.map (Array.map (fun n -> Q.of_ints n den)) w
       in
       let inst =
         Instance.create ~d
           (Array.map
              (Array.map (fun n -> float_of_int n /. float_of_int den))
              w)
       in
       let strat = random_strategy rng ~c ~d in
       let objective = random_objective rng ~m in
       (* dyadic ε, and a dyadic tv budget half the time *)
       let e_num = Prob.Rng.int rng 8 in
       let eps_q = Q.of_ints e_num den in
       let eps_f = float_of_int e_num /. float_of_int den in
       let tv_q, tv_f =
         if Prob.Rng.bool rng then (None, infinity)
         else
           let t_num = Prob.Rng.int rng 16 in
           (Some (Q.of_ints t_num den), float_of_int t_num /. float_of_int den)
       in
       let u = Uncertainty.uniform ~tv:tv_f eps_f in
       let tol = 1e-12 *. float_of_int c in
       let worst_q =
         oracle_ep ~worst:true ~objective ~eps:eps_q ~tv:tv_q rows_q strat
       in
       let best_q =
         oracle_ep ~worst:false ~objective ~eps:eps_q ~tv:tv_q rows_q strat
       in
       let worst_f = Uncertainty.robust_ep ~objective u inst strat in
       let best_f = Uncertainty.optimistic_ep ~objective u inst strat in
       let b = Uncertainty.ep_bounds ~objective u inst strat in
       if Float.abs (worst_f -. Q.to_float worst_q) > tol then
         QCheck.Test.fail_reportf
           "robust_ep %.17g <> oracle %s" worst_f (Q.to_string worst_q);
       if Float.abs (best_f -. Q.to_float best_q) > tol then
         QCheck.Test.fail_reportf
           "optimistic_ep %.17g <> oracle %s" best_f (Q.to_string best_q);
       (* the interval bounds use the same masses: tight to round-off,
          except where the [sizes.(0), c] clamp bites *)
       if b.Uncertainty.lo -. Q.to_float best_q > tol then
         QCheck.Test.fail_reportf "bounds.lo %.17g above best case %s"
           b.Uncertainty.lo (Q.to_string best_q);
       if Q.to_float worst_q -. b.Uncertainty.hi > tol then
         QCheck.Test.fail_reportf "bounds.hi %.17g below worst case %s"
           b.Uncertainty.hi (Q.to_string worst_q);
       (* for Find_all / Find_any the interval endpoints correspond
          exactly to the extremal masses, so the bounds are tight up to
          round-off; the interval Poisson-binomial DP of Find_at_least
          is sound but decouples p and 1−p of one device, so only
          enclosure holds there *)
       (match objective with
        | Objective.Find_at_least _ -> ()
        | Objective.Find_all | Objective.Find_any ->
          let tight = 1e-9 *. float_of_int c in
          if b.Uncertainty.hi -. Float.min (float_of_int c) (Q.to_float worst_q)
             > tight
          then
            QCheck.Test.fail_reportf "bounds.hi %.17g not tight vs worst %s"
              b.Uncertainty.hi (Q.to_string worst_q);
          if Float.max (float_of_int (Strategy.sizes strat).(0)) (Q.to_float best_q)
             -. b.Uncertainty.lo > tight
          then
            QCheck.Test.fail_reportf "bounds.lo %.17g not tight vs best %s"
              b.Uncertainty.lo (Q.to_string best_q));
       true)

(* -------------------- float-level properties -------------------- *)

let random_setup rng =
  let m = 1 + Prob.Rng.int rng 4 and c = 2 + Prob.Rng.int rng 8 in
  let d = 2 + Prob.Rng.int rng (c - 1) in
  let inst = Instance.random_uniform_simplex rng ~m ~c ~d in
  let strat = random_strategy rng ~c ~d in
  let objective = random_objective rng ~m in
  (inst, strat, objective)

let prop_bounds_bracket_nominal =
  QCheck.Test.make ~name:"ep_bounds bracket nominal EP (eps <= 0.1)"
    ~count:200
    (QCheck.int_range 0 999999)
    (fun seed ->
       let rng = Prob.Rng.create ~seed in
       let inst, strat, objective = random_setup rng in
       let eps = Prob.Rng.float rng 0.1 in
       let tv =
         if Prob.Rng.bool rng then infinity else Prob.Rng.float rng 0.3
       in
       let u = Uncertainty.uniform ~tv eps in
       let nominal = Strategy.expected_paging ~objective inst strat in
       let b = Uncertainty.ep_bounds ~objective u inst strat in
       let robust = Uncertainty.robust_ep ~objective u inst strat in
       let optimistic = Uncertainty.optimistic_ep ~objective u inst strat in
       let tol = 1e-9 *. float_of_int inst.Instance.c in
       if not (b.Uncertainty.lo <= nominal +. tol
               && nominal <= b.Uncertainty.hi +. tol) then
         QCheck.Test.fail_reportf "nominal %.17g outside [%.17g, %.17g]"
           nominal b.Uncertainty.lo b.Uncertainty.hi;
       if robust < nominal -. tol then
         QCheck.Test.fail_reportf "robust %.17g below nominal %.17g"
           robust nominal;
       if robust > b.Uncertainty.hi +. tol then
         QCheck.Test.fail_reportf "robust %.17g above hi %.17g"
           robust b.Uncertainty.hi;
       if optimistic > nominal +. tol then
         QCheck.Test.fail_reportf "optimistic %.17g above nominal %.17g"
           optimistic nominal;
       if optimistic < b.Uncertainty.lo -. tol then
         QCheck.Test.fail_reportf "optimistic %.17g below lo %.17g"
           optimistic b.Uncertainty.lo;
       true)

let prop_robust_monotone =
  QCheck.Test.make ~name:"robust_ep monotone in eps and tv" ~count:150
    (QCheck.int_range 0 999999)
    (fun seed ->
       let rng = Prob.Rng.create ~seed in
       let inst, strat, objective = random_setup rng in
       let tol = 1e-9 *. float_of_int inst.Instance.c in
       let e1 = Prob.Rng.float rng 0.1 in
       let e2 = e1 +. Prob.Rng.float rng (0.1 -. Float.min e1 0.1) in
       let r1 =
         Uncertainty.robust_ep ~objective (Uncertainty.uniform e1) inst strat
       and r2 =
         Uncertainty.robust_ep ~objective (Uncertainty.uniform e2) inst strat
       in
       if r1 > r2 +. tol then
         QCheck.Test.fail_reportf
           "robust_ep not monotone in eps: eps %.4g -> %.17g, eps %.4g -> %.17g"
           e1 r1 e2 r2;
       let t1 = Prob.Rng.float rng 0.2 in
       let t2 = t1 +. Prob.Rng.float rng 0.2 in
       let eps = Prob.Rng.float rng 0.1 in
       let s1 =
         Uncertainty.robust_ep ~objective
           (Uncertainty.uniform ~tv:t1 eps) inst strat
       and s2 =
         Uncertainty.robust_ep ~objective
           (Uncertainty.uniform ~tv:t2 eps) inst strat
       in
       if s1 > s2 +. tol then
         QCheck.Test.fail_reportf
           "robust_ep not monotone in tv: tv %.4g -> %.17g, tv %.4g -> %.17g"
           t1 s1 t2 s2;
       true)

(* Random in-ball perturbations: transfer mass between random cell
   pairs while honoring per-entry ε, entry range and the tv budget; the
   perturbed instance's EP must stay within the certified envelope. *)
let prop_sampled_perturbations_within_bounds =
  QCheck.Test.make ~name:"sampled in-ball perturbations stay within bounds"
    ~count:150
    (QCheck.int_range 0 999999)
    (fun seed ->
       let rng = Prob.Rng.create ~seed in
       let inst, strat, objective = random_setup rng in
       let eps = Prob.Rng.float rng 0.1 in
       let tv = if Prob.Rng.bool rng then infinity else Prob.Rng.float rng 0.2 in
       let u = Uncertainty.uniform ~tv eps in
       let c = inst.Instance.c in
       let rows =
         Array.map
           (fun row ->
              let q = Array.copy row in
              (* moved.(j) tracks |q_j − p_j| headroom against ε *)
              let moved = Array.make c 0.0 in
              let budget = ref tv in
              for _ = 1 to 2 * c do
                let a = Prob.Rng.int rng c and b = Prob.Rng.int rng c in
                if a <> b then begin
                  let cap =
                    Float.min
                      (Float.min (eps -. moved.(a)) (eps -. moved.(b)))
                      (Float.min q.(a) (1.0 -. q.(b)))
                  in
                  let cap =
                    if Float.is_finite !budget then Float.min cap !budget
                    else cap
                  in
                  if cap > 0.0 then begin
                    let delta = Prob.Rng.float rng cap in
                    q.(a) <- q.(a) -. delta;
                    q.(b) <- q.(b) +. delta;
                    moved.(a) <- moved.(a) +. delta;
                    moved.(b) <- moved.(b) +. delta;
                    if Float.is_finite !budget then budget := !budget -. delta
                  end
                end
              done;
              q)
           inst.Instance.p
       in
       let perturbed =
         Instance.create ~row_sum_tol:1e-6 ~d:inst.Instance.d rows
       in
       let ep = Strategy.expected_paging ~objective perturbed strat in
       let b = Uncertainty.ep_bounds ~objective u inst strat in
       let robust = Uncertainty.robust_ep ~objective u inst strat in
       let optimistic = Uncertainty.optimistic_ep ~objective u inst strat in
       let tol = 1e-6 *. float_of_int c in
       if ep > robust +. tol then
         QCheck.Test.fail_reportf
           "sampled EP %.17g exceeds robust_ep %.17g" ep robust;
       if ep < optimistic -. tol then
         QCheck.Test.fail_reportf
           "sampled EP %.17g below optimistic_ep %.17g" ep optimistic;
       if ep > b.Uncertainty.hi +. tol || ep < b.Uncertainty.lo -. tol then
         QCheck.Test.fail_reportf "sampled EP %.17g outside [%.17g, %.17g]"
           ep b.Uncertainty.lo b.Uncertainty.hi;
       true)

(* -------------------- degenerate balls -------------------- *)

let test_degenerate_balls () =
  let rng = Prob.Rng.create ~seed:7 in
  for _ = 1 to 20 do
    let inst, strat, objective = random_setup rng in
    let nominal = Strategy.expected_paging ~objective inst strat in
    let tol = 1e-9 *. float_of_int inst.Instance.c in
    (* eps = 0: the ball is the single nominal matrix *)
    let u0 = Uncertainty.uniform 0.0 in
    check (float_t tol) "eps=0 robust = nominal" nominal
      (Uncertainty.robust_ep ~objective u0 inst strat);
    let b0 = Uncertainty.ep_bounds ~objective u0 inst strat in
    if b0.Uncertainty.hi -. b0.Uncertainty.lo > tol then
      Alcotest.failf "eps=0 bounds not tight: [%g, %g]"
        b0.Uncertainty.lo b0.Uncertainty.hi;
    (* tv = 0: no mass may move regardless of eps *)
    let utv = Uncertainty.uniform ~tv:0.0 0.1 in
    check (float_t tol) "tv=0 robust = nominal" nominal
      (Uncertainty.robust_ep ~objective utv inst strat);
    check (float_t tol) "tv=0 optimistic = nominal" nominal
      (Uncertainty.optimistic_ep ~objective utv inst strat)
  done

let test_per_row_eps () =
  let inst =
    Instance.create ~d:2
      [| [| 0.6; 0.3; 0.1 |]; [| 0.2; 0.5; 0.3 |] |]
  in
  let strat = Strategy.of_sizes ~order:[| 0; 1; 2 |] ~sizes:[| 2; 1 |] in
  (* per-row ball with one exact row is between the two uniform balls *)
  let r_mixed =
    Uncertainty.robust_ep (Uncertainty.per_row [| 0.05; 0.0 |]) inst strat
  and r_none = Uncertainty.robust_ep (Uncertainty.uniform 0.0) inst strat
  and r_full = Uncertainty.robust_ep (Uncertainty.uniform 0.05) inst strat in
  if not (r_none -. 1e-12 <= r_mixed && r_mixed <= r_full +. 1e-12) then
    Alcotest.failf "per-row robust %.17g outside [%.17g, %.17g]"
      r_mixed r_none r_full;
  (* validation: wrong length is rejected *)
  (match Uncertainty.validate (Uncertainty.per_row [| 0.1 |]) ~m:2 with
   | Error _ -> ()
   | Ok () -> Alcotest.fail "per_row length mismatch accepted");
  (* constructor range checks *)
  (match Uncertainty.uniform 1.5 with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "eps > 1 accepted");
  match Uncertainty.uniform ~tv:(-0.1) 0.05 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative tv accepted"

(* -------------------- interval arithmetic -------------------- *)

(* Dyadic operands (k/1024) are exact in both representations, so the
   rational result of any +,−,×,Σ,Π pipeline must land inside the
   directed-rounding interval. *)
let prop_interval_encloses_rational =
  QCheck.Test.make ~name:"interval ops enclose exact rational results"
    ~count:300
    (QCheck.int_range 0 999999)
    (fun seed ->
       let rng = Prob.Rng.create ~seed in
       let den = 1024 in
       let dyadic () =
         let n = Prob.Rng.int rng (den + 1) in
         (float_of_int n /. float_of_int den, Q.of_ints n den)
       in
       let a_f, a_q = dyadic () and b_f, b_q = dyadic () in
       let c_f, c_q = dyadic () and d_f, d_q = dyadic () in
       let ia = I.exact a_f and ib = I.exact b_f in
       let ic = I.exact c_f and id_ = I.exact d_f in
       let checks =
         [ ("add", I.add ia ib, Q.(a_q + b_q));
           ("sub", I.sub ia ib, Q.(a_q - b_q));
           ("mul", I.mul ia ib, Q.(a_q * b_q));
           ("scale", I.scale a_f ib, Q.(a_q * b_q));
           ("sum", I.sum [| ia; ib; ic; id_ |],
            Q.sum [ a_q; b_q; c_q; d_q ]);
           ("product", I.product_nonneg [| ia; ib; ic; id_ |],
            Q.product [ a_q; b_q; c_q; d_q ]);
           ( "pipeline",
             I.sub (I.mul (I.add ia ib) (I.sub I.one ic)) (I.mul id_ ia),
             Q.(((a_q + b_q) * (one - c_q)) - (d_q * a_q)) );
         ]
       in
       List.iter
         (fun (name, iv, exact) ->
            (* the exact value here is dyadic with denominator ≤ 2^40,
               so to_float is lossless *)
            if not (I.contains iv (Q.to_float exact)) then
              QCheck.Test.fail_reportf
                "%s: exact %s outside %s" name (Q.to_string exact)
                (I.to_string iv))
         checks;
       true)

let test_interval_basics () =
  (match I.make 1.0 0.0 with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "inverted interval accepted");
  (match I.make Float.nan 1.0 with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "NaN endpoint accepted");
  let iv = I.make 0.25 0.5 in
  check (float_t 0.0) "lo" 0.25 (I.lo iv);
  check (float_t 0.0) "hi" 0.5 (I.hi iv);
  check (float_t 0.0) "width" 0.25 (I.width iv);
  check Alcotest.bool "contains mid" true (I.contains iv 0.3);
  check Alcotest.bool "excludes outside" false (I.contains iv 0.6);
  let h = I.hull (I.exact 0.1) (I.exact 0.9) in
  check Alcotest.bool "hull spans" true
    (I.lo h <= 0.1 && I.hi h >= 0.9);
  let neg = I.neg iv in
  check (float_t 0.0) "neg lo" (-0.5) (I.lo neg);
  check (float_t 0.0) "neg hi" (-0.25) (I.hi neg);
  let cl = I.clamp ~lo:0.0 ~hi:0.4 iv in
  check Alcotest.bool "clamp intersects" true
    (I.lo cl >= 0.25 -. 1e-15 && I.hi cl <= 0.4 +. 1e-15);
  (match I.clamp ~lo:0.6 ~hi:0.7 iv with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "empty clamp intersection accepted");
  (match I.product_nonneg [| I.make (-0.5) 0.5 |] with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "negative operand accepted in product_nonneg")

let () =
  Alcotest.run "uncertainty"
    [ ( "oracle",
        [ qt prop_robust_matches_rational_oracle ] );
      ( "bounds",
        [ qt prop_bounds_bracket_nominal;
          qt prop_robust_monotone;
          qt prop_sampled_perturbations_within_bounds;
          Alcotest.test_case "degenerate balls" `Quick test_degenerate_balls;
          Alcotest.test_case "per-row eps" `Quick test_per_row_eps;
        ] );
      ( "interval",
        [ qt prop_interval_encloses_rational;
          Alcotest.test_case "interval basics" `Quick test_interval_basics;
        ] );
    ]
