(* Unit and property tests for the numeric substrate: Bigint, Rational,
   Convex, Lemma_bounds. *)

module B = Numeric.Bigint
module Q = Numeric.Rational

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int
let string_t = Alcotest.string
let float_t = Alcotest.float 1e-9

(* -------------------- Bigint unit tests -------------------- *)

let test_bigint_of_to_int () =
  List.iter
    (fun n ->
      check (Alcotest.option int_t) (string_of_int n) (Some n)
        (B.to_int (B.of_int n)))
    [ 0; 1; -1; 42; -42; max_int; min_int + 1; 1 lsl 40; -(1 lsl 40) ]

let test_bigint_min_int () =
  check string_t "min_int" (string_of_int min_int) (B.to_string (B.of_int min_int))

let test_bigint_string_roundtrip () =
  List.iter
    (fun s -> check string_t s s (B.to_string (B.of_string s)))
    [
      "0";
      "1";
      "-1";
      "123456789012345678901234567890";
      "-999999999999999999999999999999999999";
      "1000000000000000000000000000000000000000000";
    ]

let test_bigint_add_sub () =
  let a = B.of_string "123456789123456789123456789" in
  let b = B.of_string "987654321987654321987654321" in
  check string_t "add" "1111111111111111111111111110" B.(to_string (a + b));
  check string_t "sub" "-864197532864197532864197532" B.(to_string (a - b));
  check bool_t "a + b - b = a" true (B.equal a B.(a + b - b))

let test_bigint_mul () =
  let a = B.of_string "123456789123456789" in
  let b = B.of_string "987654321987654321" in
  check string_t "mul" "121932631356500531347203169112635269"
    B.(to_string (a * b))

let test_bigint_divmod () =
  let a = B.of_string "1000000000000000000000000000007" in
  let b = B.of_string "123456789" in
  let q, r = B.divmod a b in
  check bool_t "a = q*b + r" true B.(equal a ((q * b) + r));
  check bool_t "0 <= r < b" true (B.sign r >= 0 && B.compare r b < 0)

let test_bigint_divmod_signs () =
  (* Truncated division: remainder carries the dividend's sign. *)
  let pairs = [ 7, 3; -7, 3; 7, -3; -7, -3; 0, 5; 100, 7; -100, 7 ] in
  List.iter
    (fun (a, b) ->
      let q, r = B.divmod (B.of_int a) (B.of_int b) in
      check int_t
        (Printf.sprintf "%d / %d" a b)
        (a / b) (B.to_int_exn q);
      check int_t (Printf.sprintf "%d mod %d" a b) (a mod b) (B.to_int_exn r))
    pairs

let test_bigint_gcd () =
  check int_t "gcd 12 18" 6 (B.to_int_exn (B.gcd (B.of_int 12) (B.of_int 18)));
  check int_t "gcd 0 5" 5 (B.to_int_exn (B.gcd B.zero (B.of_int 5)));
  check int_t "gcd -12 18" 6
    (B.to_int_exn (B.gcd (B.of_int (-12)) (B.of_int 18)))

let test_bigint_pow () =
  check string_t "2^100" "1267650600228229401496703205376"
    (B.to_string (B.pow B.two 100));
  check int_t "x^0" 1 (B.to_int_exn (B.pow (B.of_int 17) 0))

let test_bigint_bit_length () =
  check int_t "bitlen 0" 0 (B.bit_length B.zero);
  check int_t "bitlen 1" 1 (B.bit_length B.one);
  check int_t "bitlen 255" 8 (B.bit_length (B.of_int 255));
  check int_t "bitlen 256" 9 (B.bit_length (B.of_int 256));
  check int_t "bitlen 2^100" 101 (B.bit_length (B.pow B.two 100))

let test_bigint_to_float () =
  check float_t "to_float" 1e15 (B.to_float (B.of_string "1000000000000000"));
  check float_t "neg" (-42.0) (B.to_float (B.of_int (-42)))

(* -------------------- Bigint properties -------------------- *)

let arb_small_int = QCheck.int_range (-1_000_000_000) 1_000_000_000

let prop_ring_add =
  QCheck.Test.make ~name:"bigint add matches int" ~count:500
    (QCheck.pair arb_small_int arb_small_int) (fun (a, b) ->
      B.to_int_exn B.(of_int a + of_int b) = a + b)

let prop_ring_mul =
  QCheck.Test.make ~name:"bigint mul matches int" ~count:500
    (QCheck.pair arb_small_int arb_small_int) (fun (a, b) ->
      B.to_int_exn B.(of_int a * of_int b) = a * b)

let prop_divmod =
  QCheck.Test.make ~name:"bigint divmod identity" ~count:500
    (QCheck.pair arb_small_int arb_small_int) (fun (a, b) ->
      QCheck.assume (b <> 0);
      let q, r = B.divmod (B.of_int a) (B.of_int b) in
      B.to_int_exn q = a / b && B.to_int_exn r = a mod b)

let prop_string_roundtrip =
  QCheck.Test.make ~name:"bigint decimal roundtrip" ~count:200
    (QCheck.list_of_size (QCheck.Gen.int_range 1 40) (QCheck.int_range 0 9))
    (fun digits ->
      let s = String.concat "" (List.map string_of_int digits) in
      QCheck.assume (s <> "");
      let canonical =
        let t = B.to_string (B.of_string s) in
        t
      in
      (* Stripping leading zeros must match. *)
      let stripped =
        let rec strip i =
          if i < String.length s - 1 && s.[i] = '0' then strip (i + 1)
          else String.sub s i (String.length s - i)
        in
        strip 0
      in
      canonical = stripped)

let prop_mul_big =
  QCheck.Test.make ~name:"bigint (a*b)/b = a for big operands" ~count:200
    (QCheck.pair
       (QCheck.list_of_size (QCheck.Gen.int_range 1 30) (QCheck.int_range 0 9))
       (QCheck.list_of_size (QCheck.Gen.int_range 1 30) (QCheck.int_range 0 9)))
    (fun (da, db) ->
      let s l = String.concat "" (List.map string_of_int l) in
      let a = B.of_string (s da) and b = B.of_string (s db) in
      QCheck.assume (not (B.is_zero b));
      B.equal a (B.div (B.mul a b) b))

(* -------------------- Rational tests -------------------- *)

let q = Q.of_ints

let test_rational_normalization () =
  check bool_t "2/4 = 1/2" true (Q.equal (q 2 4) (q 1 2));
  check bool_t "-2/-4 = 1/2" true (Q.equal (q (-2) (-4)) (q 1 2));
  check bool_t "2/-4 = -1/2" true (Q.equal (q 2 (-4)) (q (-1) 2));
  check string_t "to_string" "1/2" (Q.to_string (q 3 6));
  check string_t "integer" "7" (Q.to_string (q 14 2))

let test_rational_arith () =
  check bool_t "1/3 + 1/6 = 1/2" true (Q.equal (Q.add (q 1 3) (q 1 6)) (q 1 2));
  check bool_t "1/3 * 3/5 = 1/5" true (Q.equal (Q.mul (q 1 3) (q 3 5)) (q 1 5));
  check bool_t "(1/3) / (2/3) = 1/2" true
    (Q.equal (Q.div (q 1 3) (q 2 3)) (q 1 2));
  check bool_t "pow" true (Q.equal (Q.pow (q 2 3) 3) (q 8 27));
  check bool_t "pow neg" true (Q.equal (Q.pow (q 2 3) (-2)) (q 9 4))

let test_rational_compare () =
  check bool_t "1/3 < 1/2" true (Q.compare (q 1 3) (q 1 2) < 0);
  check bool_t "-1/2 < 1/3" true (Q.compare (q (-1) 2) (q 1 3) < 0);
  check bool_t "min" true (Q.equal (Q.min (q 1 3) (q 1 2)) (q 1 3))

let test_rational_of_string () =
  check bool_t "a/b" true (Q.equal (Q.of_string "3/4") (q 3 4));
  check bool_t "decimal" true (Q.equal (Q.of_string "0.25") (q 1 4));
  check bool_t "neg decimal" true (Q.equal (Q.of_string "-1.5") (q (-3) 2));
  check bool_t "int" true (Q.equal (Q.of_string "17") (Q.of_int 17))

let test_rational_to_float () =
  check float_t "1/2" 0.5 (Q.to_float (q 1 2));
  check float_t "317/49" (317.0 /. 49.0) (Q.to_float (q 317 49))

let test_rational_division_by_zero () =
  Alcotest.check_raises "make x 0" Division_by_zero (fun () ->
      ignore (Q.make Numeric.Bigint.one Numeric.Bigint.zero));
  Alcotest.check_raises "inv 0" Division_by_zero (fun () ->
      ignore (Q.inv Q.zero))

let arb_rat =
  QCheck.map
    (fun (a, b) -> q a (if b = 0 then 1 else b))
    (QCheck.pair (QCheck.int_range (-1000) 1000) (QCheck.int_range (-1000) 1000))

let prop_rat_add_comm =
  QCheck.Test.make ~name:"rational addition commutes" ~count:300
    (QCheck.pair arb_rat arb_rat) (fun (a, b) ->
      Q.equal (Q.add a b) (Q.add b a))

let prop_rat_distrib =
  QCheck.Test.make ~name:"rational distributivity" ~count:300
    (QCheck.triple arb_rat arb_rat arb_rat) (fun (a, b, c) ->
      Q.equal (Q.mul a (Q.add b c)) (Q.add (Q.mul a b) (Q.mul a c)))

let prop_rat_inverse =
  QCheck.Test.make ~name:"rational multiplicative inverse" ~count:300 arb_rat
    (fun a ->
      QCheck.assume (not (Q.is_zero a));
      Q.equal (Q.mul a (Q.inv a)) Q.one)

let prop_rat_float_consistent =
  QCheck.Test.make ~name:"rational compare consistent with floats" ~count:300
    (QCheck.pair arb_rat arb_rat) (fun (a, b) ->
      let cf = compare (Q.to_float a) (Q.to_float b) in
      let cq = Q.compare a b in
      (* Floats at this magnitude are exact enough for consistency of
         strict orderings. *)
      (cq = 0 && abs_float (Q.to_float a -. Q.to_float b) < 1e-12)
      || (cq < 0 && cf <= 0)
      || (cq > 0 && cf >= 0))

(* -------------------- Convex -------------------- *)

let test_golden_section () =
  let x, v =
    Numeric.Convex.golden_section_min
      (fun x -> (x -. 2.0) ** 2.0 +. 1.0)
      0.0 5.0 ~tol:1e-9
  in
  check (Alcotest.float 1e-5) "argmin" 2.0 x;
  check (Alcotest.float 1e-5) "min" 1.0 v

let test_int_argmin () =
  let f x = (x - 7) * (x - 7) in
  let x, v = Numeric.Convex.int_argmin (fun x -> float_of_int (f x)) 0 20 in
  check int_t "argmin" 7 x;
  check float_t "min" 0.0 v

let test_ternary_int_min () =
  let f x = float_of_int ((x - 13) * (x - 13)) in
  let x, _ = Numeric.Convex.ternary_int_min f 0 100 in
  check int_t "argmin" 13 x

let test_convex_samples () =
  check bool_t "convex" true
    (Numeric.Convex.is_convex_samples [| 4.0; 1.0; 0.0; 1.0; 4.0 |]);
  check bool_t "not convex" false
    (Numeric.Convex.is_convex_samples [| 0.0; 2.0; 1.0; 5.0 |])

let test_amgm () =
  check float_t "amgm [1;1]" 1.0 (Numeric.Convex.amgm_upper [ 1.0; 1.0 ]);
  check bool_t "bound holds" true
    (Numeric.Convex.amgm_upper [ 0.3; 0.7 ] >= 0.3 *. 0.7)

let test_e_constant () =
  check (Alcotest.float 1e-12) "e/(e-1)" (exp 1.0 /. (exp 1.0 -. 1.0))
    Numeric.Convex.e_over_e_minus_1

(* -------------------- Lemma_bounds -------------------- *)

let test_f_lemma31_max_formula () =
  (* The exact maximum value must match direct evaluation at the claimed
     maximizer (x = 1/2, y = 2c/3). *)
  List.iter
    (fun c ->
      let x = q 1 2 and y = q (2 * c) 3 in
      let direct = Numeric.Lemma_bounds.f_lemma31_exact ~c x y in
      check bool_t
        (Printf.sprintf "c=%d" c)
        true
        (Q.equal direct (Numeric.Lemma_bounds.f_lemma31_max ~c)))
    [ 3; 6; 9; 12; 30 ]

let test_f_lemma31_maximizer_unique () =
  (* Grid check: no other grid point beats f(1/2, 2c/3). *)
  let c = 9 in
  let best = Q.to_float (Numeric.Lemma_bounds.f_lemma31_max ~c) in
  let worse = ref true in
  for xi = 0 to 20 do
    for yi = 0 to 20 do
      let x = float_of_int xi /. 20.0 in
      let y = float_of_int yi *. float_of_int c /. 20.0 in
      let v = Numeric.Lemma_bounds.f_lemma31 ~c x y in
      if v > best +. 1e-9 then worse := false
    done
  done;
  check bool_t "global max on grid" true !worse

let test_alphas_monotone () =
  List.iter
    (fun (m, d) ->
      let a = Numeric.Lemma_bounds.alphas ~m ~d in
      let arr = Array.of_list a in
      check int_t "length" (d - 1) (Array.length arr);
      check (Alcotest.float 1e-12) "alpha1"
        (float_of_int m /. float_of_int (m + 1))
        arr.(0);
      Array.iteri
        (fun i alpha ->
          check bool_t "in (0,1)" true (alpha > 0.0 && alpha < 1.0);
          if i > 0 then
            check bool_t "increasing" true (alpha > arr.(i - 1)))
        arr)
    [ 2, 2; 2, 5; 3, 4; 5, 6 ]

let test_bs_increasing () =
  let b = Numeric.Lemma_bounds.bs ~m:2 ~d:4 ~c:100 in
  check int_t "length" 5 (Array.length b);
  check float_t "b0" 0.0 b.(0);
  check float_t "bd" 100.0 b.(4);
  Array.iteri (fun i x -> if i > 0 then check bool_t "monotone" true (x > b.(i - 1))) b

let test_group_fractions_sum () =
  List.iter
    (fun (m, d) ->
      let fr = Numeric.Lemma_bounds.optimal_group_fractions ~m ~d in
      let s = Array.fold_left ( +. ) 0.0 fr in
      check (Alcotest.float 1e-9) "sums to 1" 1.0 s;
      Array.iter (fun f -> check bool_t "positive" true (f > 0.0)) fr)
    [ 2, 2; 2, 3; 3, 3; 4, 5 ]

let test_xs_lemma34_sum () =
  let xs = Numeric.Lemma_bounds.xs_lemma34 ~m:2 ~d:3 in
  check (Alcotest.float 1e-9) "sums to 1" 1.0 (Array.fold_left ( +. ) 0.0 xs)

let test_lemma34_bound_sane () =
  (* The bound is below c and above 0 for sensible parameters. *)
  List.iter
    (fun (m, d, c) ->
      let v = Numeric.Lemma_bounds.lemma34_bound ~m ~d ~c in
      check bool_t "0 < bound < c" true (v > 0.0 && v < float_of_int c))
    [ 2, 2, 30; 2, 3, 60; 3, 2, 30 ]

let qt = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "numeric"
    [
      ( "bigint",
        [
          Alcotest.test_case "of/to int" `Quick test_bigint_of_to_int;
          Alcotest.test_case "min_int" `Quick test_bigint_min_int;
          Alcotest.test_case "string roundtrip" `Quick
            test_bigint_string_roundtrip;
          Alcotest.test_case "add/sub" `Quick test_bigint_add_sub;
          Alcotest.test_case "mul" `Quick test_bigint_mul;
          Alcotest.test_case "divmod" `Quick test_bigint_divmod;
          Alcotest.test_case "divmod signs" `Quick test_bigint_divmod_signs;
          Alcotest.test_case "gcd" `Quick test_bigint_gcd;
          Alcotest.test_case "pow" `Quick test_bigint_pow;
          Alcotest.test_case "bit_length" `Quick test_bigint_bit_length;
          Alcotest.test_case "to_float" `Quick test_bigint_to_float;
          qt prop_ring_add;
          qt prop_ring_mul;
          qt prop_divmod;
          qt prop_string_roundtrip;
          qt prop_mul_big;
        ] );
      ( "rational",
        [
          Alcotest.test_case "normalization" `Quick test_rational_normalization;
          Alcotest.test_case "arithmetic" `Quick test_rational_arith;
          Alcotest.test_case "compare" `Quick test_rational_compare;
          Alcotest.test_case "of_string" `Quick test_rational_of_string;
          Alcotest.test_case "to_float" `Quick test_rational_to_float;
          Alcotest.test_case "division by zero" `Quick
            test_rational_division_by_zero;
          qt prop_rat_add_comm;
          qt prop_rat_distrib;
          qt prop_rat_inverse;
          qt prop_rat_float_consistent;
        ] );
      ( "convex",
        [
          Alcotest.test_case "golden section" `Quick test_golden_section;
          Alcotest.test_case "int argmin" `Quick test_int_argmin;
          Alcotest.test_case "ternary int min" `Quick test_ternary_int_min;
          Alcotest.test_case "convex samples" `Quick test_convex_samples;
          Alcotest.test_case "amgm" `Quick test_amgm;
          Alcotest.test_case "e/(e-1)" `Quick test_e_constant;
        ] );
      ( "lemma_bounds",
        [
          Alcotest.test_case "f max formula" `Quick test_f_lemma31_max_formula;
          Alcotest.test_case "f maximizer grid" `Quick
            test_f_lemma31_maximizer_unique;
          Alcotest.test_case "alphas monotone" `Quick test_alphas_monotone;
          Alcotest.test_case "bs increasing" `Quick test_bs_increasing;
          Alcotest.test_case "group fractions" `Quick test_group_fractions_sum;
          Alcotest.test_case "xs sum" `Quick test_xs_lemma34_sum;
          Alcotest.test_case "lemma 3.4 bound" `Quick test_lemma34_bound_sane;
        ] );
    ]
